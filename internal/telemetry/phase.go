// Package telemetry is the cycle-attribution layer of the simulator:
// a phase ledger that charges every simulated cycle to exactly one
// activity phase, and a deterministic interval sampler that snapshots
// the phase totals and hardware counters at fixed sim-cycle boundaries.
//
// Where hwmon answers "how many" and mmtrace answers "when and at what
// cost", telemetry answers "where did the time go, and how did that
// evolve" — the instrumented-kernel profile the paper's methodology is
// built on ("timing and instrumenting a complete recompile of the
// kernel", §4), now with a hard conservation identity behind it:
//
//	sum(phase cycles) + base == clock.Now
//
// holds exactly at every instant (kernel.CheckConsistency enforces it),
// because phases are exclusive: the ledger keeps an explicit phase
// stack, cycles accrue to the innermost phase, and transitions are
// either stack pushes/pops (the kernel's span discipline, proven
// balanced by the phasebalance analyzer) or exact transfers
// (Attribute, used on the allocation-free translation and cache-fill
// paths where a defer-based span cannot go).
//
// The ledger is built for the translation hot path:
//
//   - a disabled ledger costs one (inlined) branch per probe;
//   - the enabled paths allocate nothing — the stack, the phase
//     totals, the per-task/per-mm attribution tables and the sample
//     ring are all fixed-size, pre-allocated memory — and are
//     annotated //mmutricks:noalloc so the proof holds over the
//     traced Translate chain;
//   - the ledger never charges simulated cycles itself, so an enabled
//     run is cycle- and counter-identical to a disabled one.
package telemetry

import (
	"fmt"
	"strings"

	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

// Phase is one exclusive activity class. The taxonomy generalizes the
// old kernel profiler paths with the activities the paper costs out
// individually: the idle task's reclaim and pre-zero duties (§7, §9),
// swap transfers, machine-check repair, hardware hash walks, and
// instruction-fetch fill stalls.
type Phase int

const (
	// PhaseUser is everything outside the kernel: the program itself.
	PhaseUser Phase = iota
	// PhaseFetch is instruction-fetch fill stalls: the cycles the
	// machine spends filling the I-cache (and I-side inhibited
	// accesses). Attributed by exact transfer, so it never swallows the
	// kernel phase an instruction fetch happens inside.
	PhaseFetch
	// PhaseTLBMiss is TLB-miss handling: the 603's software reload, the
	// 604's hardware hash walk, and the hash-miss interrupt path.
	PhaseTLBMiss
	// PhaseFault is do_page_fault proper (demand paging, COW breaks,
	// protection faults).
	PhaseFault
	// PhaseSyscall is syscall entry/exit and in-kernel service work.
	PhaseSyscall
	// PhaseFlush is TLB/hash-table flushing.
	PhaseFlush
	// PhaseCtxSwitch is the scheduler: context switches and kernel-
	// thread address-space adoption (UseMM/UnuseMM).
	PhaseCtxSwitch
	// PhaseIdleReclaim is the idle task's zombie-PTE reclaim sweeps.
	PhaseIdleReclaim
	// PhasePreZero is the idle task's page pre-zeroing (§9).
	PhasePreZero
	// PhaseSwap is swap-device transfer time (swap-in and swap-out).
	PhaseSwap
	// PhaseMCRepair is machine-check delivery, classification and
	// repair.
	PhaseMCRepair
	// PhaseIdle is the idle task's spin loop (everything in RunIdleFor
	// not spent reclaiming or pre-zeroing).
	PhaseIdle

	// NumPhases is the number of phases.
	NumPhases
)

// phaseNames index-aligns with the Phase constants.
var phaseNames = [NumPhases]string{
	"user",
	"instr-fetch",
	"tlb-miss",
	"page-fault",
	"syscall",
	"flush",
	"ctx-switch",
	"idle-reclaim",
	"pre-zero",
	"swap",
	"mc-repair",
	"idle",
}

func (p Phase) String() string {
	if 0 <= int(p) && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// PhaseNames returns every phase name, indexed by Phase — the name
// vector recordings store alongside per-phase value arrays.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// AllPhases lists the phases for iteration, in attribution order.
var AllPhases = []Phase{
	PhaseUser, PhaseFetch, PhaseTLBMiss, PhaseFault, PhaseSyscall,
	PhaseFlush, PhaseCtxSwitch, PhaseIdleReclaim, PhasePreZero,
	PhaseSwap, PhaseMCRepair, PhaseIdle,
}

// MaxDepth bounds the phase stack. The deepest real nesting is a
// machine-check taken inside a swap inside a fault inside a syscall
// with flush spans below — well under 8; 32 leaves room for growth and
// keeps the stack in one cache line pair.
const MaxDepth = 32

// TaskSlots sizes the fixed per-task and per-mm attribution tables.
// Slots are indexed ID mod TaskSlots, the mmtrace convention: the
// recorded workloads keep well under TaskSlots live IDs, so collisions
// (which would merge two rows) do not arise in practice.
const TaskSlots = 256

// Sample is one deterministic interval snapshot: cumulative phase and
// hardware-counter state at the first attribution point at or after a
// sim-cycle boundary. Successive samples are differenced for rates.
type Sample struct {
	// Cycle is the ledger reading when the sample was taken; Boundary
	// is the interval boundary that triggered it (Cycle >= Boundary,
	// and when attribution points are sparse one sample can cover
	// several elapsed boundaries).
	Cycle    uint64
	Boundary uint64
	// Task and MM identify the task/address space current at the
	// sample; TaskCycles and MMCycles are their cumulative attributed
	// cycles so far.
	Task       uint32
	MM         uint32
	TaskCycles uint64
	MMCycles   uint64
	// Phases holds the cumulative per-phase cycle totals, indexed by
	// Phase.
	Phases [NumPhases]uint64
	// Counters is the cumulative hwmon counter file at the sample.
	Counters hwmon.Counters
}

// DefaultSampleInterval is the sampler period recordings default to:
// 1 Mi cycles (~5.7 ms at 185 MHz), fine enough to resolve benchmark
// sections, coarse enough that the default ring covers half a billion
// cycles.
const DefaultSampleInterval clock.Cycles = 1 << 20

// DefaultSampleCapacity is the default sample-ring size.
const DefaultSampleCapacity = 512

// Options configures Enable.
type Options struct {
	// SampleInterval is the sampler period in simulated cycles; 0
	// disables sampling (the profiler-only mode).
	SampleInterval clock.Cycles
	// SampleCapacity is the sample-ring size; 0 means
	// DefaultSampleCapacity. The ring keeps the FIRST SampleCapacity
	// samples and counts later ones as dropped — the opposite of the
	// mmtrace event ring, which keeps the most recent events: a
	// timeline that silently loses its origin cannot be differenced,
	// while its tail is recoverable from the end-of-run totals.
	SampleCapacity int
}

// Phases is the phase ledger of one simulated machine. It is fixed-size
// after Enable: every enabled-path method touches only pre-allocated
// memory. Like the Machine it instruments, it belongs to one simulation
// goroutine.
type Phases struct {
	led     *clock.Ledger
	mon     *hwmon.Counters
	enabled bool
	// exitFn is the one pre-bound Exit closure Span hands out, so an
	// enabled span costs no allocation either.
	exitFn func()

	depth int
	stack [MaxDepth]Phase
	// base is the ledger reading at Enable; mark is the reading at the
	// last accrue. Conservation: base + sum(cycles) == led.Now().
	base   clock.Cycles
	mark   clock.Cycles
	cycles [NumPhases]clock.Cycles
	// enters counts phase entries (span pushes and Attribute
	// transfers), the quantities Reconcile cross-checks against hwmon.
	enters [NumPhases]uint64

	curTask    uint32
	curMM      uint32
	taskIDs    [TaskSlots]uint32
	mmIDs      [TaskSlots]uint32
	taskCycles [TaskSlots]clock.Cycles
	mmCycles   [TaskSlots]clock.Cycles

	interval clock.Cycles
	next     clock.Cycles
	ring     []Sample
	taken    int
	dropped  uint64
}

// New builds a disabled ledger reading time from led and counter
// snapshots from mon. Disabled, it costs one branch per probe and
// allocates nothing beyond the struct itself (the sample ring is
// allocated by Enable).
func New(led *clock.Ledger, mon *hwmon.Counters) *Phases {
	p := &Phases{led: led, mon: mon}
	p.exitFn = p.Exit
	return p
}

// Enable starts attribution at the current ledger reading, discarding
// anything previously collected.
func (p *Phases) Enable(opt Options) {
	p.enabled = true
	p.depth = 0
	p.cycles = [NumPhases]clock.Cycles{}
	p.enters = [NumPhases]uint64{}
	p.taskIDs = [TaskSlots]uint32{}
	p.mmIDs = [TaskSlots]uint32{}
	p.taskCycles = [TaskSlots]clock.Cycles{}
	p.mmCycles = [TaskSlots]clock.Cycles{}
	p.curTask, p.curMM = 0, 0
	p.base = p.led.Now()
	p.mark = p.base
	p.interval = opt.SampleInterval
	p.taken, p.dropped = 0, 0
	if p.interval > 0 {
		capacity := opt.SampleCapacity
		if capacity <= 0 {
			capacity = DefaultSampleCapacity
		}
		if len(p.ring) != capacity {
			p.ring = make([]Sample, capacity)
		}
		p.next = p.base + p.interval
	}
}

// Disable stops attribution; the collected data stays readable. Spans
// entered while enabled unwind as no-ops (their exit closures check
// the flag), so disabling mid-span is safe.
func (p *Phases) Disable() {
	if p.enabled {
		p.accrue()
	}
	p.enabled = false
}

// Restart discards collected data and restarts attribution at the
// current ledger reading with unchanged options. The machine's warm
// reboot calls it next to the counter reset, so phase-entry counts and
// hwmon deltas keep covering the same window. A disabled ledger stays
// disabled.
func (p *Phases) Restart() {
	if !p.enabled {
		return
	}
	p.Enable(Options{SampleInterval: p.interval, SampleCapacity: len(p.ring)})
}

// Enabled reports whether the ledger is attributing.
//
//mmutricks:noalloc
func (p *Phases) Enabled() bool { return p.enabled }

// current is the innermost phase (PhaseUser with an empty stack).
//
//mmutricks:noalloc
func (p *Phases) current() Phase {
	if p.depth == 0 {
		return PhaseUser
	}
	return p.stack[p.depth-1]
}

// accrue charges the cycles since the last mark to the current phase
// (and the current task/mm rows), then gives the sampler its shot.
//
//mmutricks:noalloc
func (p *Phases) accrue() {
	now := p.led.Now()
	d := now - p.mark
	p.mark = now
	p.cycles[p.current()] += d
	p.taskCycles[p.curTask%TaskSlots] += d
	p.mmCycles[p.curMM%TaskSlots] += d
	if p.interval != 0 && now >= p.next {
		p.sample(now)
	}
}

// sample snapshots state for the boundary just crossed and advances to
// the next boundary strictly after now — one sample per crossing, even
// when attribution points are sparse enough that several boundaries
// elapsed. Determinism: everything here is a function of the simulated
// charge sequence alone.
//
//mmutricks:noalloc
func (p *Phases) sample(now clock.Cycles) {
	boundary := p.next
	p.next += p.interval * ((now-p.next)/p.interval + 1)
	if p.taken >= len(p.ring) {
		p.dropped++
		return
	}
	s := &p.ring[p.taken]
	p.taken++
	s.Cycle = uint64(now)
	s.Boundary = uint64(boundary)
	s.Task = p.curTask
	s.MM = p.curMM
	s.TaskCycles = uint64(p.taskCycles[p.curTask%TaskSlots])
	s.MMCycles = uint64(p.mmCycles[p.curMM%TaskSlots])
	for i := range s.Phases {
		s.Phases[i] = uint64(p.cycles[i])
	}
	s.Counters = *p.mon
}

// Enter pushes a phase. Prefer Span (or the kernel's span wrapper):
// the phasebalance analyzer forbids direct Enter/Exit calls outside
// this package precisely so every push provably has its pop.
//
//mmutricks:noalloc
func (p *Phases) Enter(ph Phase) {
	if !p.enabled {
		return
	}
	p.accrue()
	if p.depth == MaxDepth {
		p.tripDepth(ph) //mmutricks:noalloc-ok stack-overflow watchdog: panics once, never returns to the hot path
	}
	p.stack[p.depth] = ph
	p.depth++
	p.enters[ph]++
}

// Exit pops the innermost phase. Exits arriving with an empty stack
// (possible only by breaking the span discipline) panic.
//
//mmutricks:noalloc
func (p *Phases) Exit() {
	if !p.enabled {
		return
	}
	p.accrue()
	if p.depth == 0 {
		p.tripEmpty() //mmutricks:noalloc-ok unbalanced-exit watchdog: panics once, never returns to the hot path
	}
	p.depth--
}

// nop is the closure Span returns while disabled; sharing one instance
// keeps the disabled span allocation-free too.
var nop = func() {}

// Span enters a phase and returns the closure that leaves it; use as
//
//	defer p.Span(PhaseSyscall)()
//
// Both the enabled and disabled paths return a pre-existing closure,
// so a span never allocates.
func (p *Phases) Span(ph Phase) func() {
	if !p.enabled {
		return nop
	}
	p.Enter(ph)
	return p.exitFn
}

// Attribute transfers n just-charged cycles from the current phase to
// ph, counting one entry of ph. It is the span equivalent for the
// allocation-free paths (translation, cache fills) where a defer-based
// span cannot go: the caller charges the ledger, then immediately
// attributes the charge — with no phase transition possible in
// between, the n cycles are guaranteed to still sit in the current
// phase, so the transfer is exact and self-balancing (no Exit).
//
//mmutricks:noalloc
func (p *Phases) Attribute(ph Phase, n clock.Cycles) {
	if !p.enabled {
		return
	}
	p.accrue()
	cur := p.current()
	if p.cycles[cur] < n {
		p.tripTransfer(cur, ph, n) //mmutricks:noalloc-ok transfer-underflow watchdog: panics once, never returns to the hot path
	}
	p.cycles[cur] -= n
	p.cycles[ph] += n
	p.enters[ph]++
}

// SetTask names the task and address space subsequent cycles are
// attributed to; the kernel calls it on every context switch, next to
// mmtrace's SetTask.
//
//mmutricks:noalloc
func (p *Phases) SetTask(pid, mm uint32) {
	if !p.enabled {
		return
	}
	p.accrue()
	p.curTask, p.curMM = pid, mm
	p.taskIDs[pid%TaskSlots] = pid
	p.mmIDs[mm%TaskSlots] = mm
}

// Sync accrues up to the present so the totals read exactly. Readers
// (conservation checks, report columns, recordings) call it first.
func (p *Phases) Sync() {
	if p.enabled {
		p.accrue()
	}
}

// CheckConservation verifies the hard identity behind every number this
// package reports: base + sum(phase cycles) == clock.Now, exactly. It
// tolerates being called mid-phase (the machine-check handler runs the
// consistency sweep from inside its own span).
func (p *Phases) CheckConservation() error {
	if !p.enabled {
		return nil
	}
	p.accrue()
	var sum clock.Cycles
	for _, c := range p.cycles {
		sum += c
	}
	if now := p.led.Now(); p.base+sum != now {
		return fmt.Errorf("telemetry: phase conservation violated: base %d + attributed %d != clock now %d (drift %+d)",
			p.base, sum, now, int64(p.base+sum)-int64(now))
	}
	return nil
}

// Skew perturbs one phase's cycle total by d. It exists solely so the
// conservation-identity corruption tests can prove CheckConservation
// trips on a single-cycle under- or over-count; nothing else may call
// it.
func (p *Phases) Skew(ph Phase, d int64) {
	p.cycles[ph] = clock.Cycles(int64(p.cycles[ph]) + d)
}

// tripDepth, tripEmpty and tripTransfer raise the structural
// watchdogs. Kept out of the hot paths so those stay allocation-free;
// each runs at most once per ledger lifetime.
func (p *Phases) tripDepth(ph Phase) {
	panic(fmt.Sprintf("telemetry: phase stack overflow entering %v (depth %d)", ph, p.depth))
}

func (p *Phases) tripEmpty() {
	panic("telemetry: phase exit with empty stack")
}

func (p *Phases) tripTransfer(cur, ph Phase, n clock.Cycles) {
	panic(fmt.Sprintf("telemetry: cannot transfer %d cycles from %v (holding %d) to %v", n, cur, p.cycles[cur], ph))
}

// Cycles returns the cycles attributed to a phase so far (Sync first
// for an exact instant reading).
func (p *Phases) Cycles(ph Phase) clock.Cycles { return p.cycles[ph] }

// Enters returns how many times a phase was entered.
func (p *Phases) Enters(ph Phase) uint64 { return p.enters[ph] }

// Total returns all attributed cycles, accrued to the present.
func (p *Phases) Total() clock.Cycles {
	p.Sync()
	var t clock.Cycles
	for _, c := range p.cycles {
		t += c
	}
	return t
}

// Fraction returns a phase's share of total attributed cycles.
func (p *Phases) Fraction(ph Phase) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.cycles[ph]) / float64(t)
}

// String renders the flat profile.
func (p *Phases) String() string {
	var b strings.Builder
	t := p.Total()
	if t == 0 {
		t = 1
	}
	for _, ph := range AllPhases {
		fmt.Fprintf(&b, "%-14s %12d cycles %6.2f%%\n", ph, p.cycles[ph],
			100*float64(p.cycles[ph])/float64(t))
	}
	return b.String()
}

// Samples returns a copy of the recorded samples, oldest first.
func (p *Phases) Samples() []Sample {
	out := make([]Sample, p.taken)
	copy(out, p.ring[:p.taken])
	return out
}

// Dropped returns how many boundary crossings arrived after the ring
// filled.
func (p *Phases) Dropped() uint64 { return p.dropped }

// Interval returns the sampler period (0: sampling disabled).
func (p *Phases) Interval() clock.Cycles { return p.interval }

// Base returns the ledger reading attribution started at.
func (p *Phases) Base() clock.Cycles { return p.base }

// AttrRow is one per-task or per-mm attribution row.
type AttrRow struct {
	ID     uint32
	Cycles uint64
}

// TaskAttribution returns the non-empty per-task cycle rows in ID
// order.
func (p *Phases) TaskAttribution() []AttrRow {
	return attrRows(&p.taskIDs, &p.taskCycles)
}

// MMAttribution returns the non-empty per-mm cycle rows in ID order.
func (p *Phases) MMAttribution() []AttrRow {
	return attrRows(&p.mmIDs, &p.mmCycles)
}

func attrRows(ids *[TaskSlots]uint32, cycles *[TaskSlots]clock.Cycles) []AttrRow {
	var out []AttrRow
	for i := range cycles {
		if cycles[i] > 0 {
			out = append(out, AttrRow{ID: ids[i], Cycles: uint64(cycles[i])})
		}
	}
	// Slots are ID mod TaskSlots; an insertion sort keeps the package
	// dependency-light and the row count is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
