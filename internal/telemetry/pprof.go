package telemetry

import (
	"compress/gzip"
	"io"
)

// WriteProfile renders the phase cycle totals as a gzipped
// pprof-format profile (`go tool pprof` opens it directly): one
// synthetic function per phase, one flat sample per phase weighted by
// its attributed cycles. The profile is a deterministic function of
// the simulation — no timestamps, no host state — so recordings at
// any -j produce identical bytes.
//
// The encoder is a hand-rolled subset of the profile.proto wire format
// (varints and length-delimited fields only), which keeps the module
// dependency-free: the stdlib has no protobuf support and the repo
// takes no external modules.
func (p *Phases) WriteProfile(w io.Writer) error {
	p.Sync()
	cycles := make([]uint64, NumPhases)
	for _, ph := range AllPhases {
		cycles[ph] = uint64(p.cycles[ph])
	}
	return WriteProfileData(w, PhaseNames(), cycles, p.led.MHz())
}

// WriteProfileData is the encoder behind WriteProfile, decoupled from a
// live ledger so serialized recordings (a name vector plus per-phase
// cycle totals) can render the same profile. mhz scales duration_nanos;
// 0 omits it.
func WriteProfileData(w io.Writer, names []string, cycles []uint64, mhz int) error {
	// String table; index 0 must be "".
	strs := []string{""}
	intern := func(s string) uint64 {
		for i, have := range strs {
			if have == s {
				return uint64(i)
			}
		}
		strs = append(strs, s)
		return uint64(len(strs) - 1)
	}
	cyclesStr := intern("cycles")
	fileStr := intern("(mmutricks phase ledger)")

	var prof pbuf

	// sample_type = 1: one value per sample, "cycles"/"cycles".
	var vt pbuf
	vt.varintField(1, cyclesStr)
	vt.varintField(2, cyclesStr)
	prof.bytesField(1, vt.b)

	// One function (5), location (4) and sample (2) per phase. IDs are
	// 1-based (0 is "no function" in the format).
	for ph, name := range names {
		id := uint64(ph) + 1
		nameStr := intern(name)

		var fn pbuf
		fn.varintField(1, id)      // id
		fn.varintField(2, nameStr) // name
		fn.varintField(3, nameStr) // system_name
		fn.varintField(4, fileStr) // filename
		prof.bytesField(5, fn.b)

		var line pbuf
		line.varintField(1, id) // function_id
		var loc pbuf
		loc.varintField(1, id) // id
		loc.bytesField(4, line.b)
		prof.bytesField(4, loc.b)

		var sample pbuf
		sample.packedField(1, []uint64{id})         // location_id
		sample.packedField(2, []uint64{cycles[ph]}) // value
		prof.bytesField(2, sample.b)
	}

	for _, s := range strs {
		prof.stringField(6, s) // string_table
	}

	// duration_nanos = 10: simulated duration at the machine's clock.
	if mhz > 0 {
		var total uint64
		for _, c := range cycles {
			total += c
		}
		prof.varintField(10, total*1000/uint64(mhz))
	}

	// period_type = 11, period = 12.
	var pt pbuf
	pt.varintField(1, cyclesStr)
	pt.varintField(2, cyclesStr)
	prof.bytesField(11, pt.b)
	prof.varintField(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	return gz.Close()
}

// pbuf is a minimal protobuf message builder.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// varintField emits a wire-type-0 (varint) field.
func (p *pbuf) varintField(num int, v uint64) {
	p.varint(uint64(num)<<3 | 0)
	p.varint(v)
}

// bytesField emits a wire-type-2 (length-delimited) field.
func (p *pbuf) bytesField(num int, data []byte) {
	p.varint(uint64(num)<<3 | 2)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) stringField(num int, s string) {
	p.varint(uint64(num)<<3 | 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField emits a repeated varint field in packed encoding.
func (p *pbuf) packedField(num int, vs []uint64) {
	var body pbuf
	for _, v := range vs {
		body.varint(v)
	}
	p.bytesField(num, body.b)
}
