package telemetry

import "math/bits"

// Log2Bucket maps a value to its log2 histogram bucket — the
// mmtrace.Hist convention: bucket 0 holds zeros, bucket i >= 1 holds
// values in [2^(i-1), 2^i). Callers clamp to their bucket count.
func Log2Bucket(v uint64) int { return bits.Len64(v) }

// Log2BucketUpper returns the largest value bucket i can hold (the
// inclusive upper bound percentile estimates report).
func Log2BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Percentiles estimates quantiles from a log2 bucket histogram. For
// each q in qs it finds the bucket containing the ceil(q * total)-th
// smallest value and reports that bucket's inclusive upper bound — a
// deliberate overestimate of at most 2x, which is the histogram's
// resolution; the shared convention keeps mmutrace's and mmustat's
// p50/p99/p999 columns comparable. An empty histogram yields zeros.
func Percentiles(buckets []uint64, qs ...float64) []uint64 {
	out := make([]uint64, len(qs))
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return out
	}
	for j, q := range qs {
		rank := uint64(q * float64(total))
		if float64(rank) < q*float64(total) {
			rank++ // ceil
		}
		if rank < 1 {
			rank = 1
		}
		if rank > total {
			rank = total
		}
		var cum uint64
		for i, c := range buckets {
			cum += c
			if cum >= rank {
				out[j] = Log2BucketUpper(i)
				break
			}
		}
	}
	return out
}
