// Package report is a determinism-zone fixture (the zone match is by
// package base name): every divergence source must be flagged, and each
// has a waived twin showing the escape hatch.
package report

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func renderCounts(m map[string]int) string {
	var out string
	for k := range m { // want `ranges over a map in nondeterministic order`
		out += k
	}
	keys := make([]string, 0, len(m))
	for k := range m { //mmutricks:nondet-ok keys are collected then sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, m[k])
	}
	return out
}

func timings() (time.Duration, time.Duration) {
	start := time.Now()      // want `calls time.Now: wall-clock time varies across runs`
	d := time.Since(start)   // want `calls time.Since: wall-clock time varies across runs`
	ok := time.Now()         //mmutricks:nondet-ok wall time feeds the bench JSON, never the report bytes
	return time.Since(ok), d //mmutricks:nondet-ok waived twin of the Since above
}

func shuffle(rows []string) {
	rand.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] }) // want `calls math/rand.Shuffle on the unseeded global source`
	r := rand.New(rand.NewSource(42))                                               // ok: explicitly seeded
	r.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })    // ok: method on the seeded source
}

func label(p *int) string {
	bad := fmt.Sprintf("%p", p) //mmutricks:nondet-ok never emitted, debug aid only
	_ = bad
	return fmt.Sprintf("row@%p", p) // want `formats a raw pointer with %p`
}

func gather(n int) []int {
	out := make([]int, n)
	var last int
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = i * i // ok: index-stable write
			last = i       // want `goroutine writes captured last without an index`
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return append(out, last)
}
