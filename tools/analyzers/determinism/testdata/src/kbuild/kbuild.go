// Package kbuild sits outside the determinism zones: the same
// constructs draw no diagnostics here.
package kbuild

import "time"

func outside(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	start := time.Now()
	_ = time.Since(start)
	return total
}
