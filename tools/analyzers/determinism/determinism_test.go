package determinism_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "report", "kbuild")
}
