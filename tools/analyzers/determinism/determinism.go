// Package determinism guards the packages that promise byte-identical
// output at any -j (the determinism zones: report, tracerec, chaos,
// mmtrace, mmud). Today that promise is enforced by runtime cmp checks in CI,
// which only catch divergence on the paths a test happens to drive;
// this pass proves the absence of the usual divergence sources over
// every path:
//
//   - ranging over a map (iteration order is randomized)
//   - time.Now / time.Since (wall-clock readings)
//   - the unseeded global math/rand source (seeded rand.New sources
//     are fine — the simulator's workloads use explicit seeds)
//   - goroutine bodies writing captured variables not through an
//     index (result depends on goroutine scheduling; index-stable
//     writes like out[i] = ... are the sanctioned pattern)
//   - formatting raw pointers with %p (addresses vary across runs)
//
// A construct that is nondeterministic locally but deterministic by
// the time bytes are rendered (a map range whose results are sorted
// before output, a wall-clock reading that never reaches the report)
// is waived on its line with `//mmutricks:nondet-ok <reason>`; the
// reason must carry the sorting/containment story.
//
// Test files are exempt: the zone promise covers what the package
// renders, not how its tests drive it.
package determinism

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag nondeterminism sources (map ranges, wall-clock, unseeded rand, unordered goroutine writes, %p) in byte-identical-output packages",
	Run:  run,
}

// zones are the package base names promising byte-identical output.
var zones = map[string]bool{
	"report":   true,
	"tracerec": true,
	"chaos":    true,
	"mmtrace":  true,
	// mmud's response-encoding path renders cached/deterministic job
	// results; wall-clock readings there would leak into result bytes,
	// so the daemon package is held to the same standard (HTTP
	// scaffolding that genuinely needs wall time carries nondet-ok
	// waivers).
	"mmud": true,
}

// seededConstructors are math/rand package functions that build
// explicitly-seeded sources rather than reading the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	base := path[strings.LastIndexByte(path, '/')+1:]
	if !zones[base] {
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		waived, badWaivers := annotation.Waivers(pass.Fset, file, "nondet-ok")
		for line := range badWaivers {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:nondet-ok waiver requires a reason")
		}
		c := &checker{pass: pass, waived: waived}
		for _, decl := range file.Decls {
			c.walk(decl)
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	waived map[int]string
}

// report emits a diagnostic unless its line carries a nondet-ok waiver.
func (c *checker) report(n ast.Node, format string, args ...any) {
	if _, ok := c.waived[c.pass.Fset.Position(n.Pos()).Line]; ok {
		return
	}
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, ok := c.typeUnder(n.X).(*types.Map); ok {
				c.report(n, "ranges over a map in nondeterministic order; collect and sort the keys, or waive //mmutricks:nondet-ok with the sorting story")
			}
		case *ast.CallExpr:
			c.call(n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.goroutineWrites(lit)
			}
		}
		return true
	})
}

func (c *checker) typeUnder(e ast.Expr) types.Type {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

func (c *checker) call(n *ast.CallExpr) {
	fn := noalloc.CalleeFunc(c.pass.Info, n.Fun)
	if fn != nil && fn.Pkg() != nil {
		switch pkg := fn.Pkg().Path(); {
		case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
			c.report(n, "calls time.%s: wall-clock time varies across runs and must not reach byte-identical output", fn.Name())
		case (pkg == "math/rand" || pkg == "math/rand/v2") && isPackageFunc(fn) && !seededConstructors[fn.Name()]:
			c.report(n, "calls %s.%s on the unseeded global source; build an explicitly seeded rand.New source instead", pkg, fn.Name())
		case pkg == "fmt":
			c.pointerVerb(n)
		}
	}
}

// pointerVerb flags constant fmt format strings containing %p.
func (c *checker) pointerVerb(n *ast.CallExpr) {
	for _, arg := range n.Args {
		tv, ok := c.pass.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if strings.Contains(constant.StringVal(tv.Value), "%p") {
			c.report(arg, "formats a raw pointer with %%p: addresses vary across runs")
		}
	}
}

// isPackageFunc reports whether fn is a package-level function (not a
// method, whose receiver carries its own seeded state).
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// goroutineWrites flags assignments inside a go-statement closure that
// target captured variables without going through an index: such writes
// land in schedule order. out[i] = ... writes are index-stable and
// allowed (the RowSet/RunAll pattern).
func (c *checker) goroutineWrites(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.goroutineLHS(lit, lhs)
			}
		case *ast.IncDecStmt:
			c.goroutineLHS(lit, n.X)
		}
		return true
	})
}

func (c *checker) goroutineLHS(lit *ast.FuncLit, lhs ast.Expr) {
	if writesThroughIndex(lhs) {
		return
	}
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj, ok := c.pass.Info.ObjectOf(root).(*types.Var)
	if !ok || obj.Pos() == 0 {
		return
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return // declared inside the goroutine
	}
	c.report(lhs, "goroutine writes captured %s without an index: completion order depends on goroutine scheduling", root.Name)
}

// writesThroughIndex reports whether the lvalue chain contains an index
// step (out[i], s.rows[i].cell, ...), making concurrent writes land at
// caller-chosen positions.
func writesThroughIndex(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// rootIdent returns the base identifier of an lvalue chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
