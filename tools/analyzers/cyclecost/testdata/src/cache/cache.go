// Package cache is a fixture mirroring the simulator's cache package:
// the definition layer of the modeled-memory primitives. Writes to the
// line arrays behind the receiver count as raw touches.
package cache

type line struct {
	tag   uint32
	valid bool
}

// Cache is a toy set-associative cache.
type Cache struct {
	sets [][]line
	hits uint64
}

// Access touches the line arrays without charging and carries no
// waiver: flagged.
func (c *Cache) Access(addr uint32) bool { // want `Access touches modeled memory but never charges the cycle ledger`
	set := addr % uint32(len(c.sets))
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == addr {
			return true
		}
	}
	lines[0].tag = addr
	lines[0].valid = true
	return false
}

// Touch probes a set on the caller's budget.
//
//mmutricks:free miss/hit cost is returned to the caller, who charges it
func (c *Cache) Touch(addr uint32) {
	set := addr % uint32(len(c.sets))
	c.sets[set][0].tag = addr
}

// Len reads metadata only: no touch, clean.
func (c *Cache) Len() int { return len(c.sets) }
