// Package clock is a fixture stand-in for the simulator's cycle
// ledger. It is outside cyclecost's scope and must stay unflagged.
package clock

// Cycles counts simulated cycles.
type Cycles uint64

// Ledger accumulates charged cycles.
type Ledger struct{ total Cycles }

// Charge adds n cycles to the ledger.
func (l *Ledger) Charge(n Cycles) { l.total += n }

// Total reads the accumulated count.
func (l *Ledger) Total() Cycles { return l.total }
