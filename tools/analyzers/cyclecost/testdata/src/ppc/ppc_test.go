package ppc

import (
	"cache"
	"clock"
	"testing"
)

// Test files are exempt from the cyclecost discipline: exercising
// Probe without charging is the whole point of a test.
func TestProbeUncharged(t *testing.T) {
	m := &MMU{l1: &cache.Cache{}, led: &clock.Ledger{}}
	defer func() { recover() }() // the empty fixture cache divides by zero; irrelevant here
	m.Probe(1)
}
