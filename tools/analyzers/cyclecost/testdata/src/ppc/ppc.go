// Package ppc is a fixture mirroring the simulator's MMU layer: the
// consumers of the cache primitives, where every exported entry point
// must charge the ledger or declare itself free.
package ppc

import (
	"cache"
	"clock"
)

// Bus is the self-charging memory interface (its implementations are
// checked in their own package).
type Bus interface {
	MemAccess(pa uint32)
}

// MMU holds a cache, a bus, and the ledger.
type MMU struct {
	l1  *cache.Cache
	bus Bus
	led *clock.Ledger
}

// Translate touches the cache and charges: clean.
func (m *MMU) Translate(addr uint32) bool {
	hit := m.l1.Access(addr)
	m.led.Charge(clock.Cycles(2))
	return hit
}

// Probe touches the cache without charging: flagged.
func (m *MMU) Probe(addr uint32) bool { // want `Probe touches modeled memory but never charges the cycle ledger`
	return m.l1.Access(addr)
}

// Peek is a deliberately uncounted diagnostic probe.
//
//mmutricks:free diagnostic probe, measured paths never call it
func (m *MMU) Peek(addr uint32) bool {
	return m.l1.Access(addr)
}

// fill is unexported: not flagged itself, but taints callers.
func (m *MMU) fill(addr uint32) {
	m.l1.Access(addr)
}

// Refill inherits fill's uncharged touch: flagged transitively.
func (m *MMU) Refill(addr uint32) { // want `Refill touches modeled memory but never charges the cycle ledger`
	m.fill(addr)
}

// RefillCharged pairs the same helper with a charge: clean.
func (m *MMU) RefillCharged(addr uint32) {
	m.fill(addr)
	m.led.Charge(1)
}

// AccessThrough touches the cache but the bus access charges
// internally: clean.
func (m *MMU) AccessThrough(addr uint32) {
	m.l1.Access(addr)
	m.bus.MemAccess(addr)
}
