package cyclecost_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/cyclecost"
)

func TestCyclecost(t *testing.T) {
	analysistest.Run(t, "testdata", cyclecost.Analyzer, "clock", "cache", "ppc")
}
