// Package cyclecost enforces the simulator's cycle-accounting
// discipline: code that touches modeled memory state must charge the
// cycle ledger, or explicitly declare that the cost is its caller's
// responsibility. Uncharged memory touches silently deflate the cycle
// counts every experiment in the paper reproduction reports.
//
// Scope: packages named ppc, cache, kernel, and machine. _test.go
// files are exempt: tests exercise the primitives without charging by
// design.
//
// A function "raw-touches" modeled memory when it
//
//   - calls a cache primitive (Cache.Access, AccessNoAlloc,
//     AccessInhibited, ZeroLine, Prefetch) directly, or
//   - (inside package cache itself) mutates the line arrays backing a
//     Cache — the definition layer of those primitives, or
//   - calls a same-package function that raw-touches without charging.
//
// A function "charges" when it calls Ledger.Charge, or a self-charging
// machine primitive (a method named MemAccess or Fetch, or
// machine.ZeroLine/machine.Prefetch — each of which is itself checked
// by this analyzer in its own package), or a same-package function
// that charges.
//
// Every exported function in scope that raw-touches but does not
// charge is flagged unless it carries a `//mmutricks:free <reason>`
// waiver declaring the cost deliberately unaccounted (probes) or
// returned to the caller (the cache package's convention).
//
// The check is presence-based, not path-sensitive: it proves that
// accounting exists, not that every branch charges the right amount —
// that remains the job of the runtime tests.
package cyclecost

import (
	"go/ast"
	"go/types"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "cyclecost",
	Doc:  "require modeled-memory touches to charge the cycle ledger or carry //mmutricks:free",
	Run:  run,
}

// scopePkgs are the package names the discipline applies to.
var scopePkgs = map[string]bool{"ppc": true, "cache": true, "kernel": true, "machine": true}

// cachePrimitives are the *cache.Cache methods that move modeled
// memory without charging.
var cachePrimitives = map[string]bool{
	"Access": true, "AccessNoAlloc": true, "AccessInhibited": true,
	"ZeroLine": true, "Prefetch": true, "Touch": true,
}

// summary is the fixpoint state for one function.
type summary struct {
	touchesRaw bool
	charges    bool
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[pass.Pkg.Name()] {
		return nil
	}
	a := &analyzer{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}, sums: map[*types.Func]*summary{}}
	for _, file := range pass.Files {
		// Test code exercises the primitives without charging by
		// design; the discipline binds the simulator proper.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					a.decls[fn] = fd
				}
			}
		}
	}
	for fn := range a.decls {
		a.summarize(fn, map[*types.Func]bool{})
	}
	for fn, fd := range a.decls {
		if !fn.Exported() {
			continue
		}
		s := a.sums[fn]
		if s == nil || !s.touchesRaw || s.charges {
			continue
		}
		set := annotation.OfFunc(fd)
		for _, m := range set.Malformed {
			pass.Reportf(annotation.DocDirectivePos(fd.Doc), "malformed mmutricks directive: %s", m)
		}
		if set.Free {
			continue
		}
		pass.Reportf(fd.Pos(), "%s touches modeled memory but never charges the cycle ledger; call Ledger.Charge or annotate //mmutricks:free <reason>", fn.Name())
	}
	return nil
}

type analyzer struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*summary
}

// summarize computes the {touchesRaw, charges} summary of fn,
// following same-package static calls (cycle-guarded).
func (a *analyzer) summarize(fn *types.Func, inProgress map[*types.Func]bool) *summary {
	if s, ok := a.sums[fn]; ok {
		return s
	}
	if inProgress[fn] {
		return &summary{}
	}
	inProgress[fn] = true
	defer delete(inProgress, fn)

	s := &summary{}
	fd := a.decls[fn]
	if fd == nil {
		return s
	}
	isCachePkg := a.pass.Pkg.Name() == "cache"
	var recvName string
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	var tainted map[string]bool
	if isCachePkg && recvName != "" {
		tainted = receiverAliases(fd.Body, recvName)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch a.classifyCall(n) {
			case callCharges:
				s.charges = true
			case callRawTouch:
				s.touchesRaw = true
			case callLocal:
				if callee := localCallee(a.pass, n); callee != nil {
					cs := a.summarize(callee, inProgress)
					if cs.touchesRaw && !cs.charges {
						s.touchesRaw = true
					}
					if cs.charges {
						s.charges = true
					}
				}
			}
		case *ast.AssignStmt:
			if tainted != nil {
				for _, lhs := range n.Lhs {
					if writesReceiverState(lhs, tainted) {
						s.touchesRaw = true
					}
				}
			}
		case *ast.IncDecStmt:
			if tainted != nil && writesReceiverState(n.X, tainted) {
				s.touchesRaw = true
			}
		}
		return true
	})
	a.sums[fn] = s
	return s
}

type callKind int

const (
	callOther callKind = iota
	callCharges
	callRawTouch
	callLocal
)

// classifyCall decides what one call contributes to a summary.
func (a *analyzer) classifyCall(n *ast.CallExpr) callKind {
	sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if fn, ok := a.pass.Info.Uses[id].(*types.Func); ok && a.decls[fn] != nil {
				return callLocal
			}
		}
		return callOther
	}
	selection, ok := a.pass.Info.Selections[sel]
	if !ok {
		return callOther
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return callOther
	}
	recv := recvNamed(selection.Recv())
	switch {
	case fn.Name() == "Charge" && recv == "clock.Ledger":
		return callCharges
	case fn.Name() == "MemAccess" || fn.Name() == "Fetch":
		// Bus-level primitives charge internally (their definitions are
		// themselves in scope for this analyzer).
		return callCharges
	case (fn.Name() == "ZeroLine" || fn.Name() == "Prefetch") && recv == "machine.Machine":
		return callCharges
	case recv == "cache.Cache" && cachePrimitives[fn.Name()]:
		return callRawTouch
	case a.decls[fn] != nil:
		return callLocal
	}
	return callOther
}

// recvNamed renders a receiver type as "pkgname.TypeName".
func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// localCallee resolves a call to a function declared in this package.
func localCallee(pass *analysis.Pass, n *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// receiverAliases computes, in one forward pass, the local variable
// names initialized from receiver-rooted expressions (the cache
// package's `lines := c.sets[set]` idiom), receiver included.
func receiverAliases(body *ast.BlockStmt, recvName string) map[string]bool {
	tainted := map[string]bool{recvName: true}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			root := rootIdent(rhs)
			if root == nil || !tainted[root.Name] {
				continue
			}
			if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok {
				tainted[id.Name] = true
			}
		}
		return true
	})
	return tainted
}

// writesReceiverState reports whether lhs is an indexed write through
// the receiver's line storage or an alias of it — the definition-layer
// equivalent of a memory touch.
func writesReceiverState(lhs ast.Expr, tainted map[string]bool) bool {
	root := rootIdent(lhs)
	return root != nil && tainted[root.Name] && hasIndex(lhs)
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func hasIndex(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
		}
		return true
	})
	return found
}
