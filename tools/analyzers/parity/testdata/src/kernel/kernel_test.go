// Test files are exempt from parity: drivers snapshot counters and
// emit synthetic events freely.
package kernel

import "mmutricks/internal/mmtrace"

func (k *K) testOnlyUnpaired() {
	k.Mon.TLBMisses++
	k.Trc.Emit(mmtrace.KindMinorFault, 0)
}
