// Package kernel is the parity fixture: counter/emit pairs in every
// shape the real kernel uses, plus the violations and waivers.
package kernel

import (
	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
)

type K struct {
	Mon hwmon.Counters
	Trc *mmtrace.Tracer
}

// paired: both directions satisfied in one function.
func (k *K) paired() {
	k.Mon.TLBMisses++
	k.Trc.Emit(mmtrace.KindTLBMiss, 0)
}

// primaryHit: the sum identity — one primary-hit event witnesses both
// HTABHits and HTABPrimaryHits.
func (k *K) primaryHit() {
	k.Mon.HTABHits++
	k.Mon.HTABPrimaryHits++
	k.Trc.Emit(mmtrace.KindHTABHitPrimary, 0)
}

func (k *K) unpairedInc() {
	k.Mon.TLBMisses++ // want `increments hwmon.TLBMisses without emitting mmtrace event tlb-miss`
}

func (k *K) unpairedEmit() {
	k.Trc.Emit(mmtrace.KindMinorFault, 0) // want `emits mmtrace event minor-fault without incrementing hwmon.MinorFaults`
}

// exempt: counters with no kind and kinds with no counter draw nothing.
func (k *K) exempt() {
	k.Mon.TLBHits++
	k.Trc.Emit(mmtrace.KindTLBInsert, 0)
}

// waived cross-function pair: each side names its remote partner.
func (k *K) waivedInc() {
	k.Mon.MajorFaults++ //mmutricks:parity-ok the emit lives in waivedEmit, after the handler cost is known
}

func (k *K) waivedEmit() {
	k.Trc.Emit(mmtrace.KindMajorFault, 0) //mmutricks:parity-ok the increment lives in waivedInc, at delivery
}

// variableKind: the do_page_fault pattern — the emit's kind argument is
// a variable resolved against the Kind constants in the function.
func (k *K) variableKind(minor bool) {
	kind := mmtrace.KindMajorFault
	k.Mon.MajorFaults++
	if minor {
		kind = mmtrace.KindMinorFault
		k.Mon.MinorFaults++
	}
	k.Trc.Emit(kind, 0)
}

// closureEmit: the COW-break pattern — a deferred closure's emit counts
// as part of the enclosing function.
func (k *K) closureEmit() {
	defer func() {
		k.Trc.Emit(mmtrace.KindCtxSwitch, 0)
	}()
	k.Mon.CtxSwitches++
}

// addAssign: += is an increment too.
func (k *K) addAssign(n uint64) {
	k.Mon.HTABHits += n // want `increments hwmon.HTABHits without emitting an mmtrace event among htab-hit-primary/htab-hit-secondary`
}

// unknowns: entries missing from the table are themselves diagnostics,
// so extending hwmon or mmtrace forces a table update.
func (k *K) unknowns() {
	k.Mon.BogusEvents++              // want `hwmon.BogusEvents is not in the parity table`
	k.Trc.Emit(mmtrace.KindBogus, 0) // want `mmtrace kind kind\(\?\) is not in the parity table`
}
