// Package hwmon is a fixture double of the real counter file: the
// parity pass matches Counters by import path, which the fake fixture
// root resolves here. Field names reuse the real ones so the real
// parity table applies; BogusEvents exists only to prove the
// unknown-counter diagnostic.
package hwmon

type Counters struct {
	TLBHits         uint64 // exempt: no event kind
	TLBMisses       uint64
	HTABHits        uint64
	HTABPrimaryHits uint64
	MinorFaults     uint64
	MajorFaults     uint64
	CtxSwitches     uint64
	BogusEvents     uint64 // not in the table: must be reported
}
