// Package mmtrace is a fixture double of the real tracer: Kind
// constants keep the real iota order so their values line up with the
// real parity table, and KindBogus sits outside the real Kind space to
// prove the unknown-kind diagnostic.
package mmtrace

type Kind uint8

const (
	KindTLBMiss Kind = iota
	KindTLBInsert
	KindTLBEvict
	KindHTABHitPrimary
	KindHTABHitSecondary
	KindHTABMiss
	KindHashMissFault
	KindSoftReload
	KindHTABInsertFree
	KindHTABEvictLive
	KindHTABEvictZombie
	KindOnDemandScan
	KindMinorFault
	KindMajorFault
	KindFlushPage
	KindFlushRange
	KindFlushCutoff
	KindFlushContext
	KindVSIDReassign
	KindCtxSwitch
)

// KindBogus is outside the real Kind space.
const KindBogus Kind = 99

type Tracer struct{ n uint64 }

func (t *Tracer) Emit(kind Kind, aux uint32) {
	if t == nil {
		return
	}
	t.n++
	_ = kind
	_ = aux
}
