// Package parity statically guarantees the hwmon↔mmtrace
// reconciliation identities (mmtrace.Reconcile's 21+7 rows): every
// site that increments a paired hwmon counter must emit the
// corresponding mmtrace event in the same function, and every emit of
// a paired event kind must increment a corresponding counter in the
// same function. Today drift between a counter and its tracepoint is
// discovered at soak time, and only on driven paths; this pass proves
// the pairing at make-check time over every path.
//
// The pairing is declarative: CounterKinds maps each hwmon.Counters
// field to the mmtrace kinds that witness it (a counter may have
// several witnesses — HTABHits is satisfied by a primary or a secondary
// hit event), ExemptCounters lists fields with no event kind, and
// ExemptKinds lists kinds with no dedicated counter. A unit test
// cross-checks the table against the real hwmon.Counters fields and the
// real Kind space, so adding a counter or a kind without extending the
// table fails the build.
//
// Matching is per function: an Emit whose kind argument is a variable
// is resolved against every mmtrace.Kind constant referenced in the
// function (the do_page_fault pattern: kind := KindMajorFault, maybe
// reassigned, one Emit at the end). Function literals are checked as
// part of their enclosing function (the COW-break pattern emits from a
// deferred closure). The hwmon and mmtrace packages themselves are
// exempt (Counters.Add touches every field; Emit is the tracepoint),
// as are _test.go files.
//
// A genuinely cross-function pairing is waived on its line with
// `//mmutricks:parity-ok <reason>`; the reason must name the remote
// site carrying the partner.
package parity

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mmutricks/internal/mmtrace"
	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "parity",
	Doc:  "match every hwmon counter increment with a same-function mmtrace emit of its paired kind, and vice versa",
	Run:  run,
}

const (
	hwmonPath   = "mmutricks/internal/hwmon"
	mmtracePath = "mmutricks/internal/mmtrace"
)

// CounterKinds maps each paired hwmon.Counters field to the mmtrace
// kinds that witness an increment of it. The sets mirror
// mmtrace.Reconcile: a sum identity (HTABInserts) accepts any of its
// addend kinds; an aux identity (ZombiesReclaimed) accepts the kinds
// whose Aux carries the count.
var CounterKinds = map[string][]mmtrace.Kind{
	"TLBMisses":        {mmtrace.KindTLBMiss},
	"HTABHits":         {mmtrace.KindHTABHitPrimary, mmtrace.KindHTABHitSecondary},
	"HTABPrimaryHits":  {mmtrace.KindHTABHitPrimary},
	"HTABMisses":       {mmtrace.KindHTABMiss},
	"HashMissFaults":   {mmtrace.KindHashMissFault},
	"SoftwareReloads":  {mmtrace.KindSoftReload},
	"HTABFreeSlot":     {mmtrace.KindHTABInsertFree},
	"HTABEvictsValid":  {mmtrace.KindHTABEvictLive},
	"HTABEvictsZombie": {mmtrace.KindHTABEvictZombie},
	"HTABInserts":      {mmtrace.KindHTABInsertFree, mmtrace.KindHTABEvictLive, mmtrace.KindHTABEvictZombie},
	"OnDemandScans":    {mmtrace.KindOnDemandScan},
	"MinorFaults":      {mmtrace.KindMinorFault},
	"MajorFaults":      {mmtrace.KindMajorFault},
	"FlushPage":        {mmtrace.KindFlushPage},
	"FlushRange":       {mmtrace.KindFlushRange},
	"FlushContext":     {mmtrace.KindFlushContext},
	"CtxSwitches":      {mmtrace.KindCtxSwitch},
	"ZombiesReclaimed": {mmtrace.KindIdleReclaim, mmtrace.KindOnDemandScan},
	"IdlePagesCleared": {mmtrace.KindPageZero},
	"SwapOuts":         {mmtrace.KindSwapOut},
	"SwapIns":          {mmtrace.KindSwapIn},
	"MachineChecks":    {mmtrace.KindMachineCheck},
	"MCRepairsTLB":     {mmtrace.KindMCRepairTLB},
	"MCRepairsHTAB":    {mmtrace.KindMCRepairHTAB},
	"MCRepairsBAT":     {mmtrace.KindMCRepairBAT},
	"MCRepairsCache":   {mmtrace.KindMCRepairCache},
	"MCEscalations":    {mmtrace.KindMCEscalate},
	"MCSpurious":       {mmtrace.KindMCSpurious},
}

// ExemptCounters are hwmon.Counters fields with no event kind: pure
// aggregate statistics Reconcile never cross-checks.
var ExemptCounters = map[string]bool{
	"TLBHits":           true,
	"BATHits":           true,
	"HardwareWalks":     true,
	"HTABFlushSearches": true,
	"Signals":           true,
	"Syscalls":          true,
	"Forks":             true,
	"Execs":             true,
	"Exits":             true,
	"IdlePolls":         true,
	"ClearedPageHits":   true,
	// Phase-accounting anchors (PR 8): reconciled against telemetry
	// phase-entry counts, not mmtrace events.
	"KthreadMMSwitches": true,
	"IdleWaits":         true,
	"IdleScans":         true,
}

// ExemptKinds are event kinds with no dedicated counter (pure trace
// detail).
var ExemptKinds = map[mmtrace.Kind]bool{
	mmtrace.KindTLBInsert:    true,
	mmtrace.KindTLBEvict:     true,
	mmtrace.KindFlushCutoff:  true,
	mmtrace.KindVSIDReassign: true,
	mmtrace.KindCacheFill:    true,
}

// kindCounters is the reverse table: kind -> counters it witnesses.
var kindCounters = func() map[mmtrace.Kind][]string {
	m := map[mmtrace.Kind][]string{}
	for counter, kinds := range CounterKinds {
		for _, k := range kinds {
			m[k] = append(m[k], counter)
		}
	}
	for _, cs := range m {
		sort.Strings(cs)
	}
	return m
}()

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Path() {
	case hwmonPath, mmtracePath:
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		waived, badWaivers := annotation.Waivers(pass.Fset, file, "parity-ok")
		for line := range badWaivers {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:parity-ok waiver requires a reason")
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd, waived)
			}
		}
	}
	return nil
}

// site is one counter increment or event emit inside a function.
type site struct {
	pos    token.Pos
	name   string       // counter field, for increments
	kind   mmtrace.Kind // resolved kind, for direct emits
	direct bool         // emit kind argument is a constant
}

// checkFunc gathers every increment and emit in fd (function literals
// included) and checks the pairing both ways.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, waived map[int]string) {
	var incs, emits []site
	funcKinds := map[mmtrace.Kind]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if n.Tok == token.INC {
				if name, ok := counterField(pass.Info, n.X); ok {
					incs = append(incs, site{pos: n.Pos(), name: name})
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				for _, lhs := range n.Lhs {
					if name, ok := counterField(pass.Info, lhs); ok {
						incs = append(incs, site{pos: lhs.Pos(), name: name})
					}
				}
			}
		case *ast.CallExpr:
			if s, ok := emitSite(pass.Info, n); ok {
				emits = append(emits, s)
			}
		case *ast.Ident:
			if k, ok := kindConst(pass.Info.Uses[n]); ok {
				funcKinds[k] = true
			}
		}
		return true
	})

	allKinds := sortedKinds(funcKinds)

	// Every emitted kind, with variable-kind emits resolved against the
	// Kind constants referenced anywhere in the function.
	emitted := map[mmtrace.Kind]bool{}
	for _, e := range emits {
		if e.direct {
			emitted[e.kind] = true
		} else {
			for _, k := range allKinds {
				emitted[k] = true
			}
		}
	}
	incremented := map[string]bool{}
	for _, in := range incs {
		incremented[in.name] = true
	}

	isWaived := func(pos token.Pos) bool {
		_, ok := waived[pass.Fset.Position(pos).Line]
		return ok
	}

	for _, in := range incs {
		if ExemptCounters[in.name] || isWaived(in.pos) {
			continue
		}
		kinds, known := CounterKinds[in.name]
		if !known {
			pass.Reportf(in.pos, "hwmon.%s is not in the parity table; add its kind mapping (or exemption) to tools/analyzers/parity", in.name)
			continue
		}
		if !anyKind(emitted, kinds) {
			pass.Reportf(in.pos, "increments hwmon.%s without emitting %s in this function; pair them or waive //mmutricks:parity-ok naming the remote emit", in.name, kindNames(kinds))
		}
	}

	for _, e := range emits {
		if isWaived(e.pos) {
			continue
		}
		kinds := []mmtrace.Kind{e.kind}
		if !e.direct {
			if len(allKinds) == 0 {
				pass.Reportf(e.pos, "cannot statically resolve this emit's kind (no mmtrace.Kind constant appears in the function); use a Kind constant or waive //mmutricks:parity-ok")
				continue
			}
			kinds = allKinds
		}
		satisfied, unknown := false, mmtrace.Kind(0)
		haveUnknown := false
		var witnesses []string
		for _, k := range kinds {
			if ExemptKinds[k] {
				satisfied = true
				break
			}
			counters, known := kindCounters[k]
			if !known {
				haveUnknown, unknown = true, k
				continue
			}
			witnesses = append(witnesses, counters...)
			for _, c := range counters {
				if incremented[c] {
					satisfied = true
				}
			}
			if satisfied {
				break
			}
		}
		switch {
		case satisfied:
		case haveUnknown:
			pass.Reportf(e.pos, "mmtrace kind %s is not in the parity table; add its counter mapping (or exemption) to tools/analyzers/parity", unknown)
		default:
			sort.Strings(witnesses)
			pass.Reportf(e.pos, "emits %s without incrementing %s in this function; pair them or waive //mmutricks:parity-ok naming the remote increment", kindNames(kinds), counterNames(witnesses))
		}
	}
}

// counterField resolves e as a selection of a hwmon.Counters field and
// returns the field name.
func counterField(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Counters" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != hwmonPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// emitSite resolves call as Tracer.Emit/emit and extracts its kind.
func emitSite(info *types.Info, call *ast.CallExpr) (site, bool) {
	fn := noalloc.CalleeFunc(info, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != mmtracePath {
		return site{}, false
	}
	if fn.Name() != "Emit" && fn.Name() != "emit" {
		return site{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return site{}, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); !ok || named.Obj().Name() != "Tracer" {
		return site{}, false
	}
	if len(call.Args) == 0 {
		return site{}, false
	}
	s := site{pos: call.Pos()}
	if k, ok := constKindOf(info, call.Args[0]); ok {
		s.kind, s.direct = k, true
	}
	return s, true
}

// constKindOf resolves e to a constant mmtrace.Kind value when e is a
// (possibly parenthesized) use of a Kind constant.
func constKindOf(info *types.Info, e ast.Expr) (mmtrace.Kind, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	return kindConst(obj)
}

// kindConst returns obj's value when obj is a constant of the mmtrace
// Kind type.
func kindConst(obj types.Object) (mmtrace.Kind, bool) {
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != mmtracePath {
		return 0, false
	}
	v, ok := constant.Uint64Val(c.Val())
	if !ok {
		return 0, false
	}
	return mmtrace.Kind(v), true
}

func anyKind(set map[mmtrace.Kind]bool, kinds []mmtrace.Kind) bool {
	for _, k := range kinds {
		if set[k] {
			return true
		}
	}
	return false
}

func sortedKinds(set map[mmtrace.Kind]bool) []mmtrace.Kind {
	out := make([]mmtrace.Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kindNames renders a kind set for a diagnostic ("mmtrace event
// tlb-miss" or "an mmtrace event among htab-insert-free/...").
func kindNames(kinds []mmtrace.Kind) string {
	if len(kinds) == 1 {
		return "mmtrace event " + kinds[0].String()
	}
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return "an mmtrace event among " + strings.Join(names, "/")
}

// counterNames renders a witness-counter set for a diagnostic.
func counterNames(counters []string) string {
	counters = dedupStrings(counters)
	if len(counters) == 1 {
		return "hwmon." + counters[0]
	}
	return "a counter among hwmon." + strings.Join(counters, "/hwmon.")
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
