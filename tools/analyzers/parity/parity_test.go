package parity_test

import (
	"reflect"
	"testing"

	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/parity"
)

func TestParity(t *testing.T) {
	analysistest.Run(t, "testdata", parity.Analyzer,
		"kernel", "mmutricks/internal/hwmon", "mmutricks/internal/mmtrace")
}

// TestTableCoversCounters pins the declarative table to the real
// hwmon.Counters: every field sits in exactly one of CounterKinds or
// ExemptCounters, and the table names no stale fields. Adding a counter
// without classifying it fails here.
func TestTableCoversCounters(t *testing.T) {
	typ := reflect.TypeOf(hwmon.Counters{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		_, paired := parity.CounterKinds[name]
		exempt := parity.ExemptCounters[name]
		if paired == exempt {
			t.Errorf("hwmon.Counters.%s must be in exactly one of CounterKinds and ExemptCounters (paired=%v exempt=%v)", name, paired, exempt)
		}
	}
	for name := range parity.CounterKinds {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("CounterKinds names %q, which is not a hwmon.Counters field", name)
		}
	}
	for name := range parity.ExemptCounters {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("ExemptCounters names %q, which is not a hwmon.Counters field", name)
		}
	}
}

// TestTableCoversKinds pins the table to the real Kind space: every
// kind is either some counter's witness or exempt, never both, and the
// table references no out-of-range kinds. Adding a Kind without
// classifying it fails here.
func TestTableCoversKinds(t *testing.T) {
	covered := map[mmtrace.Kind]bool{}
	for counter, kinds := range parity.CounterKinds {
		for _, k := range kinds {
			covered[k] = true
			if parity.ExemptKinds[k] {
				t.Errorf("kind %s is both a witness of %s and exempt", k, counter)
			}
			if k >= mmtrace.NumKinds {
				t.Errorf("CounterKinds[%s] references out-of-range kind %d", counter, k)
			}
		}
	}
	for k := range parity.ExemptKinds {
		covered[k] = true
		if k >= mmtrace.NumKinds {
			t.Errorf("ExemptKinds references out-of-range kind %d", k)
		}
	}
	for k := mmtrace.Kind(0); k < mmtrace.NumKinds; k++ {
		if !covered[k] {
			t.Errorf("kind %s (%d) is in neither CounterKinds nor ExemptKinds", k, uint8(k))
		}
	}
}
