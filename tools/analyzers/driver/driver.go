// Package driver runs a set of analyzers over loaded packages and
// collects their diagnostics in deterministic order. cmd/mmulint and
// the analysistest harness share it.
package driver

import (
	"go/token"
	"sort"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/load"
)

// Diag is one resolved diagnostic.
type Diag struct {
	Pos      token.Position
	Category string
	Message  string
}

// Run applies every analyzer to every package and returns diagnostics
// sorted by file, line, column, analyzer, message.
func Run(prog *load.Program, analyzers []*analysis.Analyzer) ([]Diag, error) {
	var diags []Diag
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			report := func(d analysis.Diagnostic) {
				diags = append(diags, Diag{
					Pos:      prog.Fset.Position(d.Pos),
					Category: d.Category,
					Message:  d.Message,
				})
			}
			pass := analysis.NewPass(a, prog.Fset, pkg.Files, pkg.Types, pkg.Info, prog, report)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
	// The module index spans base and test-augmented variants of the
	// same package, which can produce byte-identical findings twice.
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || diags[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
