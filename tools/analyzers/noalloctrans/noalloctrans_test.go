package noalloctrans_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/noalloctrans"
)

func TestNoallocTrans(t *testing.T) {
	analysistest.Run(t, "testdata", noalloctrans.Analyzer,
		"trans/a", "trans/dep", "mmutricks/internal/ppc")
}
