// Package a holds noalloctrans fixtures: an annotated root whose
// unannotated callees are descended transitively, plus the free-waiver
// and line-waiver escape hatches.
package a

import "trans/dep"

//mmutricks:noalloc
func Root(n int) int {
	v := step(n)       // want `calls step which is neither //mmutricks:noalloc nor waived //mmutricks:free`
	v += dep.Helper(n) // want `calls Helper which is neither //mmutricks:noalloc nor waived //mmutricks:free`
	v += freed(n)      // ok: //mmutricks:free waives the proof obligation
	v += leaf(n)       // ok: annotated, proven at its own declaration
	v += cold(n)       //mmutricks:noalloc-ok boot path, never reached after init
	return v
}

// step is unannotated: the pass flags the call above, then descends
// here and keeps checking.
func step(n int) int {
	s := make([]int, n)       // want `builtin make allocates`
	return len(s) + deeper(n) // want `calls deeper which is neither //mmutricks:noalloc nor waived //mmutricks:free`
}

// deeper is two unannotated frames below the root: still reached in the
// same run.
func deeper(n int) int {
	return cap(append([]int{}, n)) // want `builtin append allocates` `slice literal allocates`
}

// freed opted out of the proof; its body is neither checked nor
// descended.
//
//mmutricks:free boot-time table build, cost charged by the caller
func freed(n int) int {
	return len(make([]int, n))
}

//mmutricks:noalloc
func leaf(n int) int { return n * 2 }

// cold's only call site is waived //mmutricks:noalloc-ok, so it is
// neither flagged nor descended.
func cold(n int) int {
	return len(make([]int, n))
}
