// Package dep is the cross-package fixture: its unannotated Helper is
// reached from trans/a's annotated root, and the descent crosses the
// package boundary to flag the allocation here.
package dep

func Helper(n int) int {
	s := new(int) // want `builtin new allocates`
	*s = n
	return *s
}
