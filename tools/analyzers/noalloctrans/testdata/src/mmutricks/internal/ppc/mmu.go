// Package ppc is a fixture double of mmutricks/internal/ppc (the fake
// import root resolves the real path here): Translate has lost its
// annotation, and no annotated caller exists — only the root-anchor
// check can catch the deletion.
package ppc

type MMU struct{ hits int }

func (m *MMU) Translate(ea uint32) uint32 { // want `MMU.Translate anchors the noalloc proof`
	m.hits++
	return ea
}
