// Package noalloctrans is the call-graph-aware successor of the
// noalloc pass: it proves //mmutricks:noalloc transitively over the
// whole program instead of one function at a time.
//
// For every annotated function the pass checks the body for allocating
// constructs (the shared noalloc.BodyChecker walk) and applies a callee
// policy to every statically-resolved module callee:
//
//   - annotated //mmutricks:noalloc — trusted here, proven when its own
//     package is analyzed (run the pass over ./... for the full proof);
//   - annotated //mmutricks:free <reason> — explicitly waived out of
//     the proof obligation;
//   - anything else — reported at the call site, and the pass then
//     descends into the callee's body (across package boundaries, via
//     the module index) so allocating constructs buried two or three
//     unannotated frames deep surface in a single run instead of one
//     fix-and-rerun cycle per frame.
//
// The pass also pins the proof roots: entry points like ppc.MMU.
// Translate are called only from unannotated kernel code, so no call
// site would notice a deleted annotation on them. Each method listed in
// Roots must itself be annotated, making the whole annotation chain
// deletion-tight from the root down.
//
// Interface-method contracts, the stdlib allowlist, directive
// hygiene, and //mmutricks:noalloc-ok line waivers carry over from the
// noalloc pass unchanged.
package noalloctrans

import (
	"go/ast"
	"go/types"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloctrans",
	Doc:  "prove //mmutricks:noalloc transitively over the call graph, descending into unannotated callees",
	Run:  run,
}

// Root names one method anchoring the transitive proof. Roots are the
// hot-path entry points reached only from unannotated code (the
// kernel's access loop), so no annotated caller would flag a deleted
// annotation on them; the pass requires the annotation directly.
type Root struct {
	Pkg, Recv, Name string
}

// Roots are the anchored proof obligations: the MMU translation entry,
// the machine's physical access paths (scalar and batched), the
// kernel's batched reference entry, and the tracer's emit path.
var Roots = []Root{
	{"mmutricks/internal/ppc", "MMU", "Translate"},
	{"mmutricks/internal/machine", "Machine", "MemAccess"},
	{"mmutricks/internal/machine", "Machine", "Fetch"},
	{"mmutricks/internal/machine", "Machine", "MemAccessRun"},
	{"mmutricks/internal/machine", "Machine", "FetchRun"},
	{"mmutricks/internal/machine", "Machine", "MemPairRun"},
	{"mmutricks/internal/kernel", "Kernel", "AccessRun"},
	{"mmutricks/internal/mmtrace", "Tracer", "Emit"},
}

func run(pass *analysis.Pass) error {
	visited := map[*types.Func]bool{}
	for _, file := range pass.Files {
		waived, badWaivers := annotation.LineWaivers(pass.Fset, file)
		for line := range badWaivers {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:noalloc-ok waiver requires a reason")
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			set := annotation.OfFunc(fd)
			for _, m := range set.Malformed {
				pass.Reportf(annotation.DocDirectivePos(fd.Doc), "malformed mmutricks directive: %s", m)
			}
			if !set.Noalloc || fd.Body == nil {
				continue
			}
			check(pass, fd, pass.Info, waived, visited)
		}
	}
	noalloc.CheckInterfaceImpls(pass)
	checkRoots(pass)
	return nil
}

// check runs the construct walk over one body (decl lives in the
// package described by info, which is not necessarily the package under
// analysis) and descends into unannotated, unwaived module callees.
func check(pass *analysis.Pass, decl *ast.FuncDecl, info *types.Info, waived map[int]string, visited map[*types.Func]bool) {
	bc := &noalloc.BodyChecker{
		Fset:   pass.Fset,
		Info:   info,
		Module: pass.Module,
		Report: pass.Reportf,
		Waived: waived,
	}
	bc.OnModuleCallee = func(call *ast.CallExpr, fn *types.Func, calleeDecl *ast.FuncDecl) {
		set := annotation.OfFunc(calleeDecl)
		if set.Noalloc || set.Free {
			return // proven at its own declaration, or explicitly waived
		}
		if _, ok := waived[pass.Fset.Position(call.Pos()).Line]; ok {
			return // the waiver vouches for the whole call
		}
		pass.Reportf(call.Pos(), "calls %s which is neither //mmutricks:noalloc nor waived //mmutricks:free", fn.Name())
		if visited[fn] {
			return
		}
		visited[fn] = true
		d, f, i := pass.Module.FuncSource(fn)
		if d == nil || d.Body == nil || i == nil {
			return
		}
		calleeWaived, _ := annotation.LineWaivers(pass.Fset, f)
		check(pass, d, i, calleeWaived, visited)
	}
	bc.Check(decl)
}

// checkRoots enforces the anchored proof obligations for the package
// under analysis.
func checkRoots(pass *analysis.Pass) {
	for _, r := range Roots {
		if pass.Pkg.Path() != r.Pkg {
			continue
		}
		tn, ok := pass.Pkg.Scope().Lookup(r.Recv).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != r.Name {
				continue
			}
			decl := pass.Module.FuncDecl(m)
			if decl != nil && !annotation.OfFunc(decl).Noalloc {
				pass.Reportf(decl.Pos(), "%s.%s anchors the noalloc proof (noalloctrans.Roots) and must be annotated //mmutricks:noalloc", r.Recv, r.Name)
			}
		}
	}
}
