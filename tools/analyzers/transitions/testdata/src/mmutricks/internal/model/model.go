// Package model is a miniature internal/model for exercising the
// transitions analyzer's table parsing: one unknown action, and one
// real action (vsid_reassign) deliberately missing.
package model

// Action mirrors the real table row.
type Action struct {
	Name  string
	Arity int
}

// Actions deliberately omits vsid_reassign and adds warp_mm.
var Actions = [...]Action{ // want `ActionKernel maps "vsid_reassign" -> FlushTaskContext but the model's Actions table has no such action`
	{Name: "mm_init", Arity: 2},
	{Name: "context_switch", Arity: 2},
	{Name: "borrow_mm", Arity: 1},
	{Name: "use_mm", Arity: 2},
	{Name: "unuse_mm", Arity: 1},
	{Name: "exit_mm", Arity: 1},
	{Name: "warp_mm", Arity: 1}, // want `model action "warp_mm" has no kernel mapping`
}
