// Package kernel is a miniature internal/kernel for exercising the
// transitions analyzer: the tracked types, the table-named entry
// points, the boundary function, and entry points that must be
// flagged, exempted, or waived.
package kernel

// MM mirrors the real descriptor's tracked fields.
type MM struct {
	ID           uint32
	Users, Count int
}

// Task mirrors the real task's tracked field.
type Task struct {
	PID uint32
	mm  *MM
}

// Kernel mirrors the real kernel's tracked fields plus an untracked
// one.
type Kernel struct {
	cur       *Task
	activeMM  *MM
	kthreadMM *MM
	mms       map[uint32]*MM
	tasks     map[uint32]*Task // untracked
	nextMM    uint32
}

// New is exempt: the constructor builds the boot state.
func New() *Kernel {
	k := &Kernel{mms: map[uint32]*MM{}, tasks: map[uint32]*Task{}}
	k.activeMM = &MM{Count: 2}
	return k
}

// SpawnTask is the table's mm_init realization.
func (k *Kernel) SpawnTask() *Task {
	m := &MM{ID: k.nextMM, Users: 1, Count: 1}
	k.nextMM++
	k.mms[m.ID] = m
	t := &Task{mm: m}
	k.tasks[t.PID] = t
	return t
}

// Spawn is exempt: a composite of SpawnTask and the first switch.
func (k *Kernel) Spawn() *Task {
	t := k.SpawnTask()
	k.Switch(t)
	return t
}

// Switch is the table's context_switch realization.
func (k *Kernel) Switch(t *Task) {
	k.cur = t
	k.activeMM = t.mm
}

// SwitchToIdle is the table's borrow_mm realization.
func (k *Kernel) SwitchToIdle() {
	k.cur.mm.Count++
	k.cur = nil
}

// UseMM is the table's use_mm realization.
func (k *Kernel) UseMM(t *Task) {
	t.mm.Users++
	k.kthreadMM = t.mm
}

// UnuseMM is the table's unuse_mm realization.
func (k *Kernel) UnuseMM() {
	k.kthreadMM.Users--
	k.kthreadMM = nil
}

// Exit is the table's exit_mm realization.
func (k *Kernel) Exit() {
	k.cur.mm = nil
	k.cur = nil
}

// FlushTaskContext is the table's vsid_reassign realization; it
// mutates nothing tracked (generation bumps live elsewhere) but must
// still exist for direction A.
func (k *Kernel) FlushTaskContext() {}

// killTask is an unexported mutator reached from both machine-check
// delivery paths.
func (k *Kernel) killTask(t *Task) {
	t.mm.Users--
	t.mm = nil
}

// faultTick is the propagation boundary: its kill must not taint
// every caller.
func (k *Kernel) faultTick(t *Task) {
	k.killTask(t)
}

// RunFor reaches mutation only through the faultTick boundary, so it
// is not an MM entry point.
func (k *Kernel) RunFor(t *Task) {
	k.faultTick(t)
}

// DrainMachineChecks is exempt: the synchronous delivery path.
func (k *Kernel) DrainMachineChecks(t *Task) {
	k.killTask(t)
}

// Current mutates nothing; never flagged.
func (k *Kernel) Current() *Task { return k.cur }

// Wait mutates only the untracked task table; never flagged.
func (k *Kernel) Wait(t *Task) {
	delete(k.tasks, t.PID)
}

func (k *Kernel) Steal(t *Task) { // want `exported entry point Steal mutates context-switch/MM state`
	k.cur = t
}

// Evict reaches a tracked delete through a package-local call.
func (k *Kernel) Evict(m *MM) { // want `exported entry point Evict mutates context-switch/MM state`
	k.reap(m)
}

func (k *Kernel) reap(m *MM) {
	delete(k.mms, m.ID)
}

func (k *Kernel) Adopt(m *MM) { //mmutricks:transitions-ok replayed through UseMM in the refinement harness
	m.Count++
}
