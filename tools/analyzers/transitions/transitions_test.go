package transitions_test

import (
	"reflect"
	"testing"

	"mmutricks/internal/kernel"
	"mmutricks/internal/model"
	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/transitions"
)

func TestTransitions(t *testing.T) {
	analysistest.Run(t, "testdata", transitions.Analyzer,
		"mmutricks/internal/kernel", "mmutricks/internal/model")
}

// TestTableMatchesModelActions pins ActionKernel's key set to the
// real model.Actions table, both directions: the analyzer enforces
// the same equality statically, but this test fails even when the
// analyzer itself regresses.
func TestTableMatchesModelActions(t *testing.T) {
	modelNames := map[string]bool{}
	for _, a := range model.Actions {
		modelNames[a.Name] = true
		if _, ok := transitions.ActionKernel[a.Name]; !ok {
			t.Errorf("model action %q missing from transitions.ActionKernel", a.Name)
		}
	}
	for name := range transitions.ActionKernel {
		if !modelNames[name] {
			t.Errorf("transitions.ActionKernel names %q, which is not a model action", name)
		}
	}
}

// TestTableNamesRealKernelMethods pins every ActionKernel value to an
// actual method on *kernel.Kernel, so a rename fails here as well as
// in the analyzer run.
func TestTableNamesRealKernelMethods(t *testing.T) {
	kt := reflect.TypeOf(&kernel.Kernel{})
	for action, fname := range transitions.ActionKernel {
		if _, ok := kt.MethodByName(fname); !ok {
			t.Errorf("ActionKernel[%q] = %q, which is not a method on *kernel.Kernel", action, fname)
		}
	}
}

// TestExemptEntryPointsExist: every exemption names a real exported
// kernel function (a stale exemption would silently shadow a future
// entry point of the same name), and every exemption carries a
// justification.
func TestExemptEntryPointsExist(t *testing.T) {
	kt := reflect.TypeOf(&kernel.Kernel{})
	for name, reason := range transitions.ExemptEntryPoints {
		if reason == "" {
			t.Errorf("exemption %q has no justification", name)
		}
		if name == "New" {
			continue // package-level constructor, pinned below
		}
		if _, ok := kt.MethodByName(name); !ok {
			t.Errorf("ExemptEntryPoints names %q, which is not a method on *kernel.Kernel", name)
		}
	}
	// Compile-time pin for the one package-level exemption.
	_ = kernel.New
}
