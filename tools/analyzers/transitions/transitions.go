// Package transitions statically pins the model↔kernel transition
// parity that makes mmumodel's verdicts transferable: every action in
// internal/model's declarative Actions table must map to a named,
// existing kernel entry point, and — the direction drift actually
// comes from — every exported internal/kernel entry point that
// mutates context-switch/MM state (directly or through package-local
// calls) must appear in that table, be exempted here with a reason,
// or carry a //mmutricks:transitions-ok waiver. Without this pass, a
// new kernel mutator (say, a task migration call) could ship with the
// model silently checking a machine that no longer exists.
//
// The pairing is declarative, parity-style: ActionKernel maps each
// model action name to its kernel function, and ExemptEntryPoints
// lists exported mutators that are deliberately not modeled, each
// with its justification. Unit tests cross-check both tables against
// the real model.Actions literal and the real kernel method set, so
// adding an action or renaming an entry point without extending the
// table fails the build.
//
// Mutation tracking: writes (assignment, ++/--, map store, delete) to
// Kernel.cur/.activeMM/.kthreadMM/.mms, MM.Users/.Count, and Task.mm,
// propagated up the package-local call graph to exported functions.
// Propagation cuts at faultTick: it is the asynchronous machine-check
// delivery point reached from every charged memory access, and the
// kills it performs are audited dynamically (the chaos suite and the
// consistency sweep it triggers), not through the action table —
// without the cut, every access path would count as an mm mutator and
// the check would mean nothing. The synchronous drain entry point
// (DrainMachineChecks) reaches the same kills and is exempted below
// for the same reason.
package transitions

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "transitions",
	Doc:  "keep internal/model's action table and internal/kernel's exported MM-mutating entry points in lockstep, both directions",
	Run:  run,
}

const (
	kernelPath = "mmutricks/internal/kernel"
	modelPath  = "mmutricks/internal/model"
)

// ActionKernel maps every model action name to the kernel function
// that realizes it — the table the refinement harness replays by and
// the one this pass enforces in both directions.
var ActionKernel = map[string]string{
	"mm_init":        "SpawnTask",
	"context_switch": "Switch",
	"borrow_mm":      "SwitchToIdle",
	"use_mm":         "UseMM",
	"unuse_mm":       "UnuseMM",
	"exit_mm":        "Exit",
	"vsid_reassign":  "FlushTaskContext",
}

// ExemptEntryPoints are exported kernel functions that mutate tracked
// state but are deliberately not model actions; the value is the
// justification shown nowhere but read by every reviewer of this
// table.
var ExemptEntryPoints = map[string]string{
	"New":                "constructor: builds the boot state the model's Init mirrors exactly",
	"Spawn":              "boot-time composite of SpawnTask (mm_init) and an uncharged first switch",
	"Fork":               "second realization of mm_init: the child's fresh mm is identical to SpawnTask's; the eager page copy is cycle accounting, not MM state",
	"DrainMachineChecks": "synchronous machine-check delivery; its kills are exercised by the chaos suite and audited by CheckConsistency, not the action table",
}

// trackedFields are the state the model abstracts: writes to these
// make a function an MM mutator.
var trackedFields = map[string]bool{
	"Kernel.cur":       true,
	"Kernel.activeMM":  true,
	"Kernel.kthreadMM": true,
	"Kernel.mms":       true,
	"MM.Users":         true,
	"MM.Count":         true,
	"Task.mm":          true,
}

// boundary functions cut mutation propagation: their callees' writes
// are not attributed to their callers (see the package comment).
var boundary = map[string]bool{
	"faultTick": true,
}

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Path() {
	case kernelPath:
		checkKernel(pass)
	case modelPath:
		checkModel(pass)
	}
	return nil
}

// checkModel parses the Actions table literal and requires its name
// set to equal ActionKernel's key set.
func checkModel(pass *analysis.Pass) {
	var lit *ast.CompositeLit
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name == "Actions" && i < len(vs.Values) {
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						lit = cl
					}
				}
			}
			return true
		})
	}
	if lit == nil {
		pass.Reportf(pass.Files[0].Name.Pos(), "model package has no Actions composite literal; the transitions analyzer cannot pin the action table")
		return
	}

	seen := map[string]token.Pos{}
	for _, elt := range lit.Elts {
		row, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, f := range row.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Name" {
				continue
			}
			bl, ok := kv.Value.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				pass.Reportf(kv.Value.Pos(), "action Name must be a string literal for the transitions analyzer to parse")
				continue
			}
			name, err := strconv.Unquote(bl.Value)
			if err != nil {
				continue
			}
			seen[name] = bl.Pos()
			if _, known := ActionKernel[name]; !known {
				pass.Reportf(bl.Pos(), "model action %q has no kernel mapping; add it to tools/analyzers/transitions.ActionKernel naming its kernel entry point", name)
			}
		}
	}
	for _, name := range sortedKeys(ActionKernel) {
		if _, ok := seen[name]; !ok {
			pass.Reportf(lit.Pos(), "ActionKernel maps %q -> %s but the model's Actions table has no such action; remove the mapping or model the transition", name, ActionKernel[name])
		}
	}
}

// checkKernel verifies both directions against the kernel package:
// the table's named functions exist, and every exported mutator is
// accounted for.
func checkKernel(pass *analysis.Pass) {
	type fnInfo struct {
		decl    *ast.FuncDecl
		mutates bool
		callees []*types.Func
	}
	fns := map[*types.Func]*fnInfo{}
	waivedLines := map[int]bool{}

	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		waived, malformed := annotation.Waivers(pass.Fset, file, "transitions-ok")
		for line := range malformed {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:transitions-ok waiver requires a reason")
		}
		for line := range waived {
			waivedLines[line] = true
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if trackedWrite(pass.Info, lhs) {
							info.mutates = true
						}
					}
				case *ast.IncDecStmt:
					if trackedWrite(pass.Info, n.X) {
						info.mutates = true
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
						if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && trackedWrite(pass.Info, n.Args[0]) {
							info.mutates = true
						}
					}
					if callee := noalloc.CalleeFunc(pass.Info, n.Fun); callee != nil && callee.Pkg() == pass.Pkg {
						info.callees = append(info.callees, callee)
					}
				}
				return true
			})
			fns[fn] = info
		}
	}

	// Transitive closure over package-local calls, cut at the boundary.
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.mutates {
				continue
			}
			for _, c := range info.callees {
				if boundary[c.Name()] {
					continue
				}
				if ci, ok := fns[c]; ok && ci.mutates {
					info.mutates = true
					changed = true
					break
				}
			}
		}
	}

	// Direction A: every table-named kernel function exists.
	defined := map[string]bool{}
	for fn := range fns {
		defined[fn.Name()] = true
	}
	for _, action := range sortedKeys(ActionKernel) {
		if fname := ActionKernel[action]; !defined[fname] {
			pass.Reportf(pass.Files[0].Name.Pos(), "ActionKernel maps %q to kernel function %s, which does not exist; fix the table or restore the entry point", action, fname)
		}
	}

	// Direction B: every exported mutator is a table value, exempt, or
	// waived on its declaration line.
	inTable := map[string]string{}
	for action, fname := range ActionKernel {
		inTable[fname] = action
	}
	var exported []*types.Func
	for fn := range fns {
		exported = append(exported, fn)
	}
	sort.Slice(exported, func(i, j int) bool { return exported[i].Name() < exported[j].Name() })
	for _, fn := range exported {
		info := fns[fn]
		name := fn.Name()
		if !info.mutates || !fn.Exported() {
			continue
		}
		if _, ok := inTable[name]; ok {
			continue
		}
		if _, ok := ExemptEntryPoints[name]; ok {
			continue
		}
		if waivedLines[pass.Fset.Position(info.decl.Pos()).Line] {
			continue
		}
		pass.Reportf(info.decl.Name.Pos(), "exported entry point %s mutates context-switch/MM state but is not in the model's action table; model it (ActionKernel + model.Actions), exempt it in tools/analyzers/transitions, or waive //mmutricks:transitions-ok with a reason", name)
	}
}

// trackedWrite reports whether e (an assignment target, ++/-- operand,
// or delete argument) resolves to a tracked field, possibly through an
// index expression (k.mms[id] = ...).
func trackedWrite(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return trackedFields[fmt.Sprintf("%s.%s", named.Obj().Name(), sel.Sel.Name)]
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
