// Package sub provides a locked entry point for the cross-package
// lockorder fixture.
package sub

import "sync"

var sMu sync.Mutex

// Touch takes the package lock briefly.
func Touch() {
	sMu.Lock()
	sMu.Unlock()
}
