// Package order is the lockorder fixture: the pinned a → b order (the
// test extends AllowedEdges with it), a planted reversal, a self-edge,
// a helper-mediated edge, a cross-package edge, a waived reversal that
// still completes a cycle, and a stale table row (also planted by the
// test) reported on the package clause below.
package order // want `pinned lock-order edge order\.pair\.b -> order\.pair\.ghost is no longer exhibited`

import (
	"sync"

	"order/sub"
)

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// ordered follows the pinned a → b order: clean.
func (p *pair) ordered() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// reversed plants the b → a order, which no table row allows.
func (p *pair) reversed() {
	p.b.Lock()
	p.a.Lock() // want `acquiring order\.pair\.a while holding order\.pair\.b is not in the pinned lock order`
	p.a.Unlock()
	p.b.Unlock()
}

// selfEdge takes the same lock class twice, on distinct instances.
func selfEdge(p1, p2 *pair) {
	p1.a.Lock()
	p2.a.Lock() // want `acquires order\.pair\.a while an instance of the same lock class is already held`
	p2.a.Unlock()
	p1.a.Unlock()
}

// Package-level locks: the muX → muY edge is reached through a helper,
// so it only exists via the transitive acquisition summary.
var (
	muX sync.Mutex
	muY sync.Mutex
)

func lockY() {
	muY.Lock()
	muY.Unlock()
}

func nested() {
	muX.Lock()
	lockY() // want `acquiring order\.muY while holding order\.muX is not in the pinned lock order`
	muX.Unlock()
}

// crossPkg nests another package's lock: the summary descends into
// sub.Touch's body across the package boundary.
func crossPkg() {
	muX.Lock()
	sub.Touch() // want `acquiring order/sub\.sMu while holding order\.muX is not in the pinned lock order`
	muX.Unlock()
}

// concurrent does NOT create an edge: the goroutine runs unnested.
func concurrent() {
	muX.Lock()
	go lockY()
	muX.Unlock()
}

// waivedCycle: the waiver silences the table check, but the reversal
// still closes a cycle with the pinned a → b row and stays reported.
func (p *pair) waivedCycle() {
	p.b.Lock()
	p.a.Lock() //mmutricks:lockorder-ok fixture: deliberately reversed // want `completes a lock cycle \(order\.pair\.b -> order\.pair\.a -> order\.pair\.b\)`
	p.a.Unlock()
	p.b.Unlock()
}
