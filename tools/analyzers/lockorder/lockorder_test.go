package lockorder_test

import (
	"strings"
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/lockorder"
)

func TestLockOrder(t *testing.T) {
	saved := lockorder.AllowedEdges
	lockorder.AllowedEdges = append(append([]lockorder.Edge(nil), saved...),
		// The fixture's pinned order, and a stale row the fixture no
		// longer exhibits.
		lockorder.Edge{From: "order.pair.a", To: "order.pair.b"},
		lockorder.Edge{From: "order.pair.b", To: "order.pair.ghost"},
	)
	defer func() { lockorder.AllowedEdges = saved }()
	analysistest.Run(t, "testdata", lockorder.Analyzer, "order", "order/sub")
}

// TestAllowedEdgesAcyclic pins the pinned order itself: the committed
// table must be a DAG (the analyzer proves reality follows the table;
// this test proves the table cannot legitimize a deadlock) and its
// classes must be well-formed package-qualified declaration sites.
func TestAllowedEdgesAcyclic(t *testing.T) {
	graph := map[string][]string{}
	for _, e := range lockorder.AllowedEdges {
		for _, class := range []string{e.From, e.To} {
			rest := class
			if i := strings.LastIndex(class, "/"); i >= 0 {
				rest = class[i+1:]
			}
			if !strings.Contains(rest, ".") {
				t.Errorf("AllowedEdges class %q is not a package-qualified declaration site", class)
			}
		}
		if e.From == e.To {
			t.Errorf("AllowedEdges row %s -> %s is a self-edge", e.From, e.To)
		}
		graph[e.From] = append(graph[e.From], e.To)
	}

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string, trail []string)
	visit = func(n string, trail []string) {
		color[n] = grey
		for _, m := range graph[n] {
			switch color[m] {
			case grey:
				t.Errorf("AllowedEdges contains a cycle through %s (trail %v)", m, append(trail, n, m))
			case white:
				visit(m, append(trail, n))
			}
		}
		color[n] = black
	}
	for n := range graph {
		if color[n] == white {
			visit(n, nil)
		}
	}
}
