// Package lockorder pins the repo's lock-acquisition order as a
// checked DAG. A lock class is a mutex declaration site
// ("path/to/pkg.Type.field" or "path/to/pkg.var"); an edge From→To
// means a thread may acquire a To lock while holding a From lock. The
// pass walks every function with the lockset interpreter, records each
// acquisition made while something is held — descending through static
// callees across package boundaries, the call-graph machinery
// noalloctrans and transitions already use — and requires every
// observed edge to appear in AllowedEdges or carry a
// //mmutricks:lockorder-ok line waiver.
//
// The checks, per analyzed package:
//
//   - An acquisition of a lock class while an instance of the same
//     class is held is reported outright (self-deadlock when it is the
//     same instance; an intra-class order nobody audits when it is
//     not). Waivable per line.
//   - An observed edge absent from AllowedEdges is reported at the
//     acquisition site: extend the table (keeping it acyclic — the
//     unit test enforces that) or waive the line.
//   - A table edge whose From class is declared in this package but
//     which no code path exhibits anymore is reported as stale, so the
//     table never outlives the code it pins.
//   - A waived edge that completes a cycle with the table is still
//     reported: waivers exempt an edge from the table, not from
//     deadlock-freedom.
//
// Calls launched by `go` do not contribute edges (the callee runs
// concurrently, not nested), and function literals are analyzed as
// their own roots with nothing held.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/lockset"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "pin the static lock-acquisition graph as a checked DAG: every nested acquisition must follow a pinned edge, and the pinned edges must stay cycle-free",
	Run:  run,
}

// Edge allows acquiring To while holding From.
type Edge struct {
	From, To string
}

// AllowedEdges is the pinned acquisition order, the DAG this pass
// checks reality against. Grow it deliberately: the unit test keeps it
// acyclic, and the stale-entry check deletes rows the code no longer
// exhibits. Today's order: mmud's Server.mu wraps its result cache's
// lock (Submit consults the cache, settle and Stats update it, all
// under the server lock); the journal and budget locks never nest.
var AllowedEdges = []Edge{
	{From: "mmutricks/internal/mmud.Server.mu", To: "mmutricks/internal/mmud.resultCache.mu"},
}

type checker struct {
	pass *analysis.Pass

	// acquires memoizes the transitive lock classes a function takes,
	// across package boundaries. state is the DFS cycle cut.
	acquired map[*types.Func]map[string]bool
	state    map[*types.Func]int

	// classOf names the class of each lock instance seen acquired.
	classOf map[lockset.Key]string

	// observed maps each edge seen in this package to its acquisition
	// positions (an edge can be waived at one site and not another).
	observed map[Edge][]token.Pos
	seenAt   map[string]bool

	// waived maps "file:line" of lockorder-ok waivers.
	waived map[string]bool

	reported map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		acquired: map[*types.Func]map[string]bool{},
		state:    map[*types.Func]int{},
		classOf:  map[lockset.Key]string{},
		observed: map[Edge][]token.Pos{},
		seenAt:   map[string]bool{},
		waived:   map[string]bool{},
		reported: map[string]bool{},
	}

	for _, file := range pass.Files {
		if c.testFile(file) {
			continue
		}
		waived, malformed := annotation.Waivers(pass.Fset, file, "lockorder-ok")
		for line := range malformed {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:lockorder-ok waiver requires a reason")
		}
		fname := pass.Fset.Position(file.Pos()).Filename
		for line := range waived {
			c.waived[posKey(fname, line)] = true
		}
	}

	hooks := lockset.Hooks{
		OnAcquire: c.onAcquire,
		OnCall:    c.onCall,
	}
	for _, file := range pass.Files {
		if c.testFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lockset.Walk(pass.Info, fd.Body, lockset.Held{}, hooks)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockset.Walk(pass.Info, lit.Body, lockset.Held{}, hooks)
			}
			return true
		})
	}

	c.check()
	return nil
}

func posKey(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (c *checker) testFile(file *ast.File) bool {
	return strings.HasSuffix(c.pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

func (c *checker) isWaived(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.waived[posKey(p.Filename, p.Line)]
}

// onAcquire records edges from every held lock to the directly
// acquired one.
func (c *checker) onAcquire(call *ast.CallExpr, k lockset.Key, class string, m lockset.Mode, held lockset.Held) {
	if class == "" {
		return
	}
	c.classOf[k] = class
	for hk := range held {
		c.edge(c.classOf[hk], class, call.Pos())
	}
}

// onCall records edges from every held lock to everything the static
// callee transitively acquires.
func (c *checker) onCall(call *ast.CallExpr, held lockset.Held) {
	if len(held) == 0 {
		return
	}
	callee := noalloc.CalleeFunc(c.pass.Info, call.Fun)
	if callee == nil {
		return
	}
	acq := c.transAcquired(callee)
	if len(acq) == 0 {
		return
	}
	classes := make([]string, 0, len(acq))
	for a := range acq {
		classes = append(classes, a)
	}
	sort.Strings(classes)
	for hk := range held {
		for _, a := range classes {
			c.edge(c.classOf[hk], a, call.Pos())
		}
	}
}

// edge records one from→to observation, reporting self-edges outright.
func (c *checker) edge(from, to string, pos token.Pos) {
	if from == "" || to == "" {
		return
	}
	if from == to {
		if c.isWaived(pos) {
			return
		}
		c.reportOnce(pos, "self:"+from, "acquires %s while an instance of the same lock class is already held: self-deadlock when it is the same instance, an unaudited intra-class order otherwise (waive //mmutricks:lockorder-ok <reason> if provably distinct and ordered)", to)
		return
	}
	e := Edge{From: from, To: to}
	at := from + "->" + to + "@" + itoa(int(pos))
	if c.seenAt[at] {
		return
	}
	c.seenAt[at] = true
	c.observed[e] = append(c.observed[e], pos)
}

// transAcquired computes the set of lock classes fn acquires,
// transitively through static callees, across package boundaries.
// FuncLit bodies and `go` statements inside fn do not count: they run
// at another time or on another goroutine.
func (c *checker) transAcquired(fn *types.Func) map[string]bool {
	if acq, ok := c.acquired[fn]; ok {
		return acq
	}
	if c.state[fn] == 1 {
		return nil // recursion: the cycle's edges are found at its sites
	}
	c.state[fn] = 1
	acq := map[string]bool{}
	decl, _, info := c.pass.Module.FuncSource(fn)
	if decl == nil || decl.Body == nil || info == nil {
		c.state[fn] = 2
		c.acquired[fn] = acq
		return acq
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if _, class, op, ok := lockset.MutexOp(info, n); op != lockset.OpNone {
				if ok && (op == lockset.OpLock || op == lockset.OpRLock) && class != "" {
					acq[class] = true
				}
				return true
			}
			if callee := noalloc.CalleeFunc(info, n.Fun); callee != nil {
				for a := range c.transAcquired(callee) {
					acq[a] = true
				}
			}
		}
		return true
	})
	c.state[fn] = 2
	c.acquired[fn] = acq
	return acq
}

// check reconciles the observations with the pinned table.
func (c *checker) check() {
	allowed := map[Edge]bool{}
	for _, e := range AllowedEdges {
		allowed[e] = true
	}

	// Deterministic order over the observed edges.
	edges := make([]Edge, 0, len(c.observed))
	for e := range c.observed {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})

	// Every observed acquisition site must follow a pinned edge or be
	// waived; waived sites join the cycle check below.
	type waivedSite struct {
		e   Edge
		pos token.Pos
	}
	var waivedEdges []waivedSite
	for _, e := range edges {
		if allowed[e] {
			continue
		}
		for _, pos := range c.observed[e] {
			if c.isWaived(pos) {
				waivedEdges = append(waivedEdges, waivedSite{e, pos})
				continue
			}
			c.reportOnce(pos, "edge:"+e.From+"->"+e.To,
				"acquiring %s while holding %s is not in the pinned lock order; add the edge to tools/analyzers/lockorder.AllowedEdges (the unit test keeps it acyclic) or waive //mmutricks:lockorder-ok <reason>", e.To, e.From)
		}
	}

	// Stale table rows: a pinned edge whose From class lives in this
	// package must still be exhibited by some code path.
	pkg := c.pass.Pkg.Path()
	for _, e := range AllowedEdges {
		if classPkg(e.From) != pkg {
			continue
		}
		if _, ok := c.observed[e]; !ok {
			c.reportOnce(c.pass.Files[0].Name.Pos(), "stale:"+e.From+"->"+e.To,
				"pinned lock-order edge %s -> %s is no longer exhibited by any code path in %s; delete the stale AllowedEdges row", e.From, e.To, pkg)
		}
	}

	// A waiver exempts an edge from the table, not from acyclicity.
	if len(waivedEdges) > 0 {
		graph := map[string][]string{}
		for _, e := range AllowedEdges {
			graph[e.From] = append(graph[e.From], e.To)
		}
		for _, w := range waivedEdges {
			graph[w.e.From] = append(graph[w.e.From], w.e.To)
		}
		for _, w := range waivedEdges {
			if path := findPath(graph, w.e.To, w.e.From); path != nil {
				cycle := append([]string{w.e.From}, path...)
				c.reportOnce(w.pos, "cycle:"+w.e.From+"->"+w.e.To,
					"waived acquisition of %s while holding %s completes a lock cycle (%s): threads taking these locks in different orders can deadlock", w.e.To, w.e.From, strings.Join(cycle, " -> "))
			}
		}
	}
}

// classPkg extracts the package path from a lock class
// ("a/b/c.Type.field" or "a/b/c.var" → "a/b/c").
func classPkg(class string) string {
	slash := strings.LastIndex(class, "/")
	dot := strings.Index(class[slash+1:], ".")
	if dot < 0 {
		return class
	}
	return class[:slash+1+dot]
}

// findPath returns a path from → ... → to in graph, nil when none.
func findPath(graph map[string][]string, from, to string) []string {
	seen := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		if n == to {
			return []string{n}
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		next := append([]string(nil), graph[n]...)
		sort.Strings(next)
		for _, m := range next {
			if p := dfs(m); p != nil {
				return append([]string{n}, p...)
			}
		}
		return nil
	}
	return dfs(from)
}

func (c *checker) reportOnce(pos token.Pos, key, format string, args ...any) {
	k := itoa(int(pos)) + ":" + key
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.pass.Reportf(pos, format, args...)
}
