// Package guardedby proves the mutex discipline the concurrent
// packages rely on: every struct field annotated
// //mmutricks:guarded-by(mu) may only be read or written on a path
// where the named sibling mutex is provably held, every field
// annotated //mmutricks:atomic may only be touched through sync/atomic,
// and //mmutricks:unsync <reason> records — with a mandatory audit
// trail — the fields deliberately outside the lock.
//
// Coverage is part of the proof: in any struct that declares a
// sync.Mutex or sync.RWMutex field (and in any package-level var block
// that declares one), every other field must carry exactly one of the
// three annotations. Deleting an annotation is therefore itself a
// finding, not a silent hole.
//
// The held-set analysis (tools/analyzers/lockset) is path-sensitive
// within a function: Lock/RLock add to the set, Unlock/RUnlock remove,
// deferred unlocks keep the lock to the end of the body, and branches
// merge by intersection with terminating paths dropped. Across
// functions the pass infers entry-held sets for unexported functions as
// the intersection of the held sets at their intra-package call sites
// (iterated to a fixpoint), which is how a helper like nextID — only
// ever called under s.mu — proves clean without annotations on the
// helper itself. Exported functions and functions used as values get an
// empty entry set: they can be called from anywhere. Function literals
// are analyzed with an empty entry set too (a closure body runs later,
// possibly after the enclosing critical section ended), so a closure
// that needs the lock must take it itself.
//
// RWMutex strength matters: a write (assignment, ++/--, delete, taking
// the address) requires the exclusive lock; a read is satisfied by
// either RLock or Lock.
//
// Constructor and other pre-publication access is waived per line with
// //mmutricks:guardedby-ok <reason>.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/lockset"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "prove every //mmutricks:guarded-by field access holds its mutex and every //mmutricks:atomic access goes through sync/atomic",
	Run:  run,
}

// maxRounds bounds the entry-held fixpoint; the sets grow monotonically
// so this is a backstop, not a tuning knob.
const maxRounds = 10

// guard describes one annotated field or package-level var.
type guard struct {
	mutexName string     // sibling mutex field name, or package var name
	mutexObj  *types.Var // the mutex object (package vars only)
	rw        bool       // guarded by an RWMutex
	owner     string     // owning struct name, "" for package vars
	name      string     // the guarded field/var's own name
}

type checker struct {
	pass *analysis.Pass

	// fieldGuards/varGuards map annotated objects to their guard.
	fieldGuards map[*types.Var]*guard
	varGuards   map[*types.Var]*guard
	// atomics are the //mmutricks:atomic fields and vars.
	atomics map[*types.Var]bool

	// waived maps file → waived line set (guardedby-ok).
	waived map[*ast.File]map[int]string

	// writes marks selector/ident occurrences in mutating position.
	writes map[ast.Node]bool
	// atomicOK marks occurrences that go through sync/atomic.
	atomicOK map[ast.Node]bool

	// fns indexes package-local function declarations; entry carries
	// the inferred entry-held set per function.
	fns   map[*types.Func]*ast.FuncDecl
	entry map[*types.Func]lockset.Held
	// valueUsed marks functions referenced outside call position;
	// their entry set stays empty.
	valueUsed map[*types.Func]bool

	reported map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:        pass,
		fieldGuards: map[*types.Var]*guard{},
		varGuards:   map[*types.Var]*guard{},
		atomics:     map[*types.Var]bool{},
		waived:      map[*ast.File]map[int]string{},
		writes:      map[ast.Node]bool{},
		atomicOK:    map[ast.Node]bool{},
		fns:         map[*types.Func]*ast.FuncDecl{},
		entry:       map[*types.Func]lockset.Held{},
		valueUsed:   map[*types.Func]bool{},
		reported:    map[string]bool{},
	}

	for _, file := range pass.Files {
		if c.testFile(file) {
			continue
		}
		waived, malformed := annotation.Waivers(pass.Fset, file, "guardedby-ok")
		for line := range malformed {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:guardedby-ok waiver requires a reason")
		}
		c.waived[file] = waived
		c.collectAnnotations(file)
		c.classify(file)
		c.indexFuncs(file)
	}

	if len(c.fieldGuards) == 0 && len(c.varGuards) == 0 && len(c.atomics) == 0 {
		return nil
	}

	c.inferEntryHeld()
	for _, file := range pass.Files {
		if c.testFile(file) {
			continue
		}
		c.checkFile(file)
	}
	return nil
}

func (c *checker) testFile(file *ast.File) bool {
	return strings.HasSuffix(c.pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

// collectAnnotations walks the file's type and var declarations,
// recording guards and enforcing the coverage rule: a mutex-bearing
// struct (or var block) must annotate every non-sync field.
func (c *checker) collectAnnotations(file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		switch gd.Tok {
		case token.TYPE:
			for _, spec := range gd.Specs {
				ts, okT := spec.(*ast.TypeSpec)
				if !okT {
					continue
				}
				if st, okS := ts.Type.(*ast.StructType); okS {
					c.collectStruct(ts.Name.Name, st)
				}
			}
		case token.VAR:
			c.collectVarBlock(gd)
		}
	}
}

func (c *checker) collectStruct(name string, st *ast.StructType) {
	// First pass: find the mutex fields.
	mutexes := map[string]bool{} // name → isRW
	rwOf := map[string]bool{}
	for _, f := range st.Fields.List {
		tv, ok := c.pass.Info.Types[f.Type]
		if !ok {
			continue
		}
		if isMutex, rw := lockset.IsMutexType(tv.Type); isMutex {
			for _, n := range f.Names {
				mutexes[n.Name] = true
				rwOf[n.Name] = rw
			}
		}
	}
	for _, f := range st.Fields.List {
		set := annotation.OfField(f.Doc, f.Comment)
		for _, m := range set.Malformed {
			c.pass.Reportf(f.Pos(), "malformed annotation on field %s.%s: %s", name, fieldName(f), m)
		}
		if set.Count() > 1 {
			c.pass.Reportf(f.Pos(), "field %s.%s declares more than one concurrency discipline; pick one of guarded-by/atomic/unsync", name, fieldName(f))
			continue
		}
		synced := c.syncTyped(f.Type)
		if set.Count() == 0 {
			if len(mutexes) > 0 && !synced && !c.fieldIsMutex(f) {
				c.pass.Reportf(f.Pos(), "field %s.%s of mutex-bearing struct %s has no concurrency annotation; declare //mmutricks:guarded-by(<mu>), //mmutricks:atomic, or //mmutricks:unsync <reason>", name, fieldName(f), name)
			}
			continue
		}
		if set.GuardedBy != "" && !mutexes[set.GuardedBy] {
			c.pass.Reportf(f.Pos(), "field %s.%s is guarded-by(%s) but %s names no sync.Mutex/sync.RWMutex field of %s", name, fieldName(f), set.GuardedBy, set.GuardedBy, name)
			continue
		}
		for _, n := range f.Names {
			obj, okO := c.pass.Info.Defs[n].(*types.Var)
			if !okO {
				continue
			}
			switch {
			case set.GuardedBy != "":
				c.fieldGuards[obj] = &guard{mutexName: set.GuardedBy, rw: rwOf[set.GuardedBy], owner: name, name: n.Name}
			case set.Atomic:
				c.atomics[obj] = true
			}
			// unsync: recorded only by its reason in the source.
		}
	}
}

func (c *checker) collectVarBlock(gd *ast.GenDecl) {
	// Find mutex vars in the block.
	mutexes := map[string]*types.Var{}
	rwOf := map[string]bool{}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, n := range vs.Names {
			obj, okO := c.pass.Info.Defs[n].(*types.Var)
			if !okO {
				continue
			}
			if isMutex, rw := lockset.IsMutexType(obj.Type()); isMutex {
				mutexes[n.Name] = obj
				rwOf[n.Name] = rw
			}
		}
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		set := annotation.OfField(vs.Doc, vs.Comment)
		for _, m := range set.Malformed {
			c.pass.Reportf(vs.Pos(), "malformed annotation on var %s: %s", specName(vs), m)
		}
		if set.Count() > 1 {
			c.pass.Reportf(vs.Pos(), "var %s declares more than one concurrency discipline; pick one of guarded-by/atomic/unsync", specName(vs))
			continue
		}
		anyMutex := false
		for _, n := range vs.Names {
			if _, okM := mutexes[n.Name]; okM {
				anyMutex = true
			}
		}
		if set.Count() == 0 {
			if len(mutexes) > 0 && !anyMutex && !c.syncTypedVar(vs) {
				c.pass.Reportf(vs.Pos(), "var %s shares a declaration block with a mutex but has no concurrency annotation; declare //mmutricks:guarded-by(<mu>), //mmutricks:atomic, or //mmutricks:unsync <reason>", specName(vs))
			}
			continue
		}
		if set.GuardedBy != "" && mutexes[set.GuardedBy] == nil {
			c.pass.Reportf(vs.Pos(), "var %s is guarded-by(%s) but %s names no sync.Mutex/sync.RWMutex var in this block", specName(vs), set.GuardedBy, set.GuardedBy)
			continue
		}
		for _, n := range vs.Names {
			obj, okO := c.pass.Info.Defs[n].(*types.Var)
			if !okO {
				continue
			}
			switch {
			case set.GuardedBy != "":
				c.varGuards[obj] = &guard{mutexName: set.GuardedBy, mutexObj: mutexes[set.GuardedBy], rw: rwOf[set.GuardedBy], name: n.Name}
			case set.Atomic:
				c.atomics[obj] = true
			}
		}
	}
}

// syncTyped reports whether the field type is declared in package sync
// (Mutex, WaitGroup, Once, Cond, ...); such fields carry their own
// synchronization and are exempt from the coverage rule.
func (c *checker) syncTyped(t ast.Expr) bool {
	tv, ok := c.pass.Info.Types[t]
	if !ok || tv.Type == nil {
		return false
	}
	return typeFromPkg(tv.Type, "sync")
}

func (c *checker) syncTypedVar(vs *ast.ValueSpec) bool {
	for _, n := range vs.Names {
		if obj := c.pass.Info.Defs[n]; obj != nil && typeFromPkg(obj.Type(), "sync") {
			return true
		}
	}
	return false
}

func typeFromPkg(t types.Type, pkg string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkg
}

func (c *checker) fieldIsMutex(f *ast.Field) bool {
	tv, ok := c.pass.Info.Types[f.Type]
	if !ok {
		return false
	}
	isMutex, _ := lockset.IsMutexType(tv.Type)
	return isMutex
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		names := make([]string, len(f.Names))
		for i, n := range f.Names {
			names[i] = n.Name
		}
		return strings.Join(names, ",")
	}
	return "(embedded)"
}

func specName(vs *ast.ValueSpec) string {
	names := make([]string, len(vs.Names))
	for i, n := range vs.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// classify precomputes, over the whole file (function literals
// included), which occurrences sit in mutating position and which go
// through sync/atomic.
func (c *checker) classify(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.markWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.markWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				c.markWrite(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					c.markWrite(n.Args[0])
				}
			}
			c.markAtomicCall(n)
		}
		return true
	})
}

// markWrite marks the selector/ident spine of an assignment target:
// writing s.st.Failed[k] mutates s.st.Failed, s.st, and (vacuously) s.
func (c *checker) markWrite(e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			c.writes[x] = true
			e = x.X
		case *ast.Ident:
			c.writes[x] = true
			return
		default:
			return
		}
	}
}

// markAtomicCall marks the two blessed sync/atomic shapes: a method
// call on an atomic.* typed occurrence, and &occurrence passed to a
// sync/atomic function.
func (c *checker) markAtomicCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, okT := c.pass.Info.Types[sel.X]; okT && tv.Type != nil && typeFromPkg(tv.Type, "sync/atomic") {
			c.atomicOK[ast.Unparen(sel.X)] = true
		}
	}
	if fn := noalloc.CalleeFunc(c.pass.Info, call.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				c.atomicOK[ast.Unparen(u.X)] = true
			}
		}
	}
}

// indexFuncs records the package's function declarations and which
// functions are referenced as values (entry inference must not trust
// call sites it cannot see).
func (c *checker) indexFuncs(file *ast.File) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			if fn, okF := c.pass.Info.Defs[fd.Name].(*types.Func); okF {
				c.fns[fn] = fd
			}
		}
	}
	// A function object used anywhere other than as the operand of a
	// call is value-used. Walk idents; exempt the ones that are the
	// callee of an enclosing CallExpr by collecting those first.
	callee := map[*ast.Ident]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch f := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee[f] = true
			case *ast.SelectorExpr:
				callee[f.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callee[id] {
			return true
		}
		if fn, okF := c.pass.Info.Uses[id].(*types.Func); okF && fn.Pkg() == c.pass.Pkg {
			c.valueUsed[fn] = true
		}
		return true
	})
}

// inferEntryHeld computes, for each unexported package function, the
// intersection of the mapped held sets over all its intra-package call
// sites, iterating to a fixpoint.
func (c *checker) inferEntryHeld() {
	for round := 0; round < maxRounds; round++ {
		type acc struct {
			held lockset.Held
			seen bool
		}
		accum := map[*types.Func]*acc{}
		record := func(call *ast.CallExpr, held lockset.Held) {
			callee := noalloc.CalleeFunc(c.pass.Info, call.Fun)
			if callee == nil || callee.Pkg() != c.pass.Pkg || callee.Exported() || c.valueUsed[callee] {
				return
			}
			decl, okD := c.fns[callee]
			if !okD {
				return
			}
			mapped := c.mapToCallee(call, decl, held)
			a := accum[callee]
			if a == nil {
				accum[callee] = &acc{held: mapped, seen: true}
				return
			}
			a.held = lockset.Intersect(a.held, mapped)
		}
		c.walkAll(lockset.Hooks{OnCall: record})

		changed := false
		for fn := range c.fns {
			if fn.Exported() || c.valueUsed[fn] {
				continue
			}
			var next lockset.Held
			if a := accum[fn]; a != nil {
				next = a.held
			} else {
				next = lockset.Held{}
			}
			if !lockset.Equal(c.entry[fn], next) {
				c.entry[fn] = next
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// walkAll runs the lockset walker over every function declaration (with
// its inferred entry set) and every function literal (with an empty
// one) in the package's non-test files.
func (c *checker) walkAll(hooks lockset.Hooks) {
	for _, file := range c.pass.Files {
		if c.testFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, okF := c.pass.Info.Defs[fd.Name].(*types.Func)
			if !okF {
				continue
			}
			lockset.Walk(c.pass.Info, fd.Body, c.entry[fn], hooks)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockset.Walk(c.pass.Info, lit.Body, lockset.Held{}, hooks)
			}
			return true
		})
	}
}

// mapToCallee translates the caller's held set into the callee's frame:
// package-var locks pass through; receiver-rooted locks are rebased
// onto the callee's receiver when the call's receiver chain prefixes
// them.
func (c *checker) mapToCallee(call *ast.CallExpr, decl *ast.FuncDecl, held lockset.Held) lockset.Held {
	out := lockset.Held{}
	for k, m := range held {
		if k.Path == "" {
			out[k] = m
		}
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return out
	}
	recvObj, okR := c.pass.Info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	if !okR {
		return out
	}
	sel, okS := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okS {
		return out
	}
	base, _, okB := lockset.ExprKey(c.pass.Info, sel.X)
	if !okB {
		return out
	}
	prefix := base.Path
	if prefix != "" {
		prefix += "."
	}
	for k, m := range held {
		if k.Root != base.Root || k.Path == "" {
			continue
		}
		rest, okP := strings.CutPrefix(k.Path, prefix)
		if !okP || rest == "" {
			continue
		}
		out[lockset.Key{Root: recvObj, Path: rest}] = m
	}
	return out
}

// checkFile is the reporting pass: every occurrence of a guarded field
// must hold its mutex at sufficient strength, every atomic field must
// go through sync/atomic.
func (c *checker) checkFile(file *ast.File) {
	waived := c.waived[file]
	hooks := lockset.Hooks{
		OnNode: func(n ast.Node, held lockset.Held) {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c.checkSelector(file, waived, n, held)
			case *ast.Ident:
				c.checkIdent(file, waived, n, held)
			}
		},
	}
	// Restrict the walk to this file's functions.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, okF := c.pass.Info.Defs[fd.Name].(*types.Func)
		if !okF {
			continue
		}
		lockset.Walk(c.pass.Info, fd.Body, c.entry[fn], hooks)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lockset.Walk(c.pass.Info, lit.Body, lockset.Held{}, hooks)
		}
		return true
	})
}

func (c *checker) checkSelector(file *ast.File, waived map[int]string, sel *ast.SelectorExpr, held lockset.Held) {
	selinfo, ok := c.pass.Info.Selections[sel]
	if !ok || selinfo.Kind() != types.FieldVal {
		return
	}
	obj, okV := selinfo.Obj().(*types.Var)
	if !okV {
		return
	}
	if c.atomics[obj] {
		c.checkAtomicUse(sel, obj)
		return
	}
	g, okG := c.fieldGuards[obj]
	if !okG {
		return
	}
	key, _, okK := lockset.ExprKey(c.pass.Info, sel)
	write := c.writes[sel]
	if !okK {
		c.reportAccess(file, waived, sel.Pos(), g, write, "the access path is not a plain selector chain, so the lock instance cannot be resolved")
		return
	}
	// Rebase the guarded field's key onto its sibling mutex.
	dir := ""
	if i := strings.LastIndex(key.Path, "."); i >= 0 {
		dir = key.Path[:i+1]
	}
	mutexKey := lockset.Key{Root: key.Root, Path: dir + g.mutexName}
	mode, heldOK := held[mutexKey]
	if heldOK && (!write || mode == lockset.Exclusive) {
		return
	}
	why := fmt.Sprintf("%s is not held", mutexKey)
	if heldOK {
		why = fmt.Sprintf("%s is only read-locked and this is a write", mutexKey)
	}
	c.reportAccess(file, waived, sel.Pos(), g, write, why)
}

func (c *checker) checkIdent(file *ast.File, waived map[int]string, id *ast.Ident, held lockset.Held) {
	obj, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if c.atomics[obj] && obj.Pkg() == c.pass.Pkg && !obj.IsField() && isPackageLevel(obj, c.pass.Pkg) {
		c.checkAtomicUse(id, obj)
		return
	}
	g, okG := c.varGuards[obj]
	if !okG {
		return
	}
	mutexKey := lockset.Key{Root: g.mutexObj, Path: ""}
	write := c.writes[id]
	mode, heldOK := held[mutexKey]
	if heldOK && (!write || mode == lockset.Exclusive) {
		return
	}
	why := fmt.Sprintf("%s is not held", g.mutexName)
	if heldOK {
		why = fmt.Sprintf("%s is only read-locked and this is a write", g.mutexName)
	}
	c.reportAccess(file, waived, id.Pos(), g, write, why)
}

func isPackageLevel(v *types.Var, pkg *types.Package) bool {
	return pkg.Scope().Lookup(v.Name()) == v
}

func (c *checker) checkAtomicUse(n ast.Node, obj *types.Var) {
	if c.atomicOK[n] {
		return
	}
	pos := n.Pos()
	keyStr := fmt.Sprintf("%d:atomic:%s", pos, obj.Name())
	if c.reported[keyStr] {
		return
	}
	c.reported[keyStr] = true
	c.pass.Reportf(pos, "%s is //mmutricks:atomic but this access does not go through sync/atomic (call a method of its atomic.* type or pass &%s to a sync/atomic function)", obj.Name(), obj.Name())
}

func (c *checker) reportAccess(file *ast.File, waived map[int]string, pos token.Pos, g *guard, write bool, why string) {
	line := c.pass.Fset.Position(pos).Line
	if _, ok := waived[line]; ok {
		return
	}
	kind := "read"
	if write {
		kind = "write"
	}
	target := g.name
	if g.owner != "" {
		target = g.owner + "." + g.name
	}
	keyStr := fmt.Sprintf("%d:%s:%s", pos, kind, target)
	if c.reported[keyStr] {
		return
	}
	c.reported[keyStr] = true
	c.pass.Reportf(pos, "%s of %s without holding %s: %s (field is //mmutricks:guarded-by(%s); waive pre-publication access with //mmutricks:guardedby-ok <reason>)", kind, target, g.mutexName, why, g.mutexName)
}
