// Package locks is the guardedby fixture: the held-set shapes the
// analyzer must prove clean (all-paths locking, deferred unlock,
// early unlock-and-return, inferred helper entry sets, RLock reads)
// and the violations it must catch.
package locks

import (
	"sync"
	"sync/atomic"
)

// counter is the basic mutex-bearing struct: every non-sync field
// declares its discipline.
type counter struct {
	mu   sync.Mutex
	n    int           //mmutricks:guarded-by(mu)
	hits uint64        //mmutricks:atomic
	gen  atomic.Uint64 //mmutricks:atomic
	name string        //mmutricks:unsync immutable after construction
}

// incrBranchy holds the lock on every path into the access.
func (c *counter) incrBranchy(fast bool) {
	if fast {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// incrDeferred: a deferred unlock keeps the lock to the end of the body.
func (c *counter) incrDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// get: the early unlock-and-return path terminates, so it drops out of
// the merge and the tail access still proves locked.
func (c *counter) get(quick bool) int {
	c.mu.Lock()
	if quick {
		n := c.n
		c.mu.Unlock()
		return n
	}
	n := c.n * 2
	c.mu.Unlock()
	return n
}

func (c *counter) bare() int {
	return c.n // want `read of counter\.n without holding mu`
}

func (c *counter) releasedTooSoon() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n = 0 // want `write of counter\.n without holding mu`
}

func (c *counter) oneBranch(fast bool) {
	if fast {
		c.mu.Lock()
	}
	c.n++ // want `write of counter\.n without holding mu`
	if fast {
		c.mu.Unlock()
	}
}

// bump is unexported and every call site holds c.mu, so its inferred
// entry set carries the lock and the access proves clean.
func (c *counter) bump(by int) {
	c.n += by
}

func (c *counter) incrViaHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(1)
}

func (c *counter) incrViaHelperAgain() {
	c.mu.Lock()
	c.bump(2)
	c.mu.Unlock()
}

// leak has one unlocked call site, so its inferred entry set is empty.
func (c *counter) leak() {
	c.n++ // want `write of counter\.n without holding mu`
}

func (c *counter) callsLeakUnlocked() {
	c.leak()
}

func (c *counter) callsLeakLocked() {
	c.mu.Lock()
	c.leak()
	c.mu.Unlock()
}

// sneaky's only call site holds the lock, but the method is also taken
// as a value below, so the inference must not trust the call sites.
func (c *counter) sneaky() {
	c.n++ // want `write of counter\.n without holding mu`
}

func (c *counter) callsSneakyLocked() {
	c.mu.Lock()
	c.sneaky()
	c.mu.Unlock()
}

var hook = (*counter).sneaky

// newCounter: constructor access is waived per line, pre-publication.
func newCounter(name string) *counter {
	c := &counter{name: name}
	c.n = 1 //mmutricks:guardedby-ok constructor: not yet published
	return c
}

func newCounterUnwaived() *counter {
	c := &counter{}
	c.n = 2 // want `write of counter\.n without holding mu`
	return c
}

// async: a goroutine body runs after the critical section; the closure
// starts with an empty held set.
func (c *counter) async() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write of counter\.n without holding mu`
	}()
}

// closureRelocks: a closure that takes the lock itself proves clean.
func (c *counter) closureRelocks() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// loopRelease: the lock is gone on the second iteration; the two-pass
// loop interpretation catches it.
func (c *counter) loopRelease(xs []int) {
	c.mu.Lock()
	for range xs {
		c.n++ // want `write of counter\.n without holding mu`
		c.mu.Unlock()
	}
}

// hit and bumpGen are the blessed sync/atomic shapes.
func (c *counter) hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) bumpGen() uint64 {
	c.gen.Add(1)
	return c.gen.Load()
}

func (c *counter) hitBad() {
	c.hits++ // want `hits is //mmutricks:atomic but this access does not go through sync/atomic`
}

func (c *counter) readGenBad() uint64 {
	g := c.gen // want `gen is //mmutricks:atomic but this access does not go through sync/atomic`
	return g.Load()
}

// table exercises RWMutex strength: RLock satisfies reads only.
type table struct {
	rw sync.RWMutex
	m  map[string]int //mmutricks:guarded-by(rw)
}

func (t *table) lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) store(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = 1
}

func (t *table) storeUnderRLock(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = 1 // want `write of table\.m without holding rw: .*only read-locked`
}

// sloppy exercises the coverage and validation diagnostics.
type sloppy struct {
	mu sync.Mutex
	a  int // want `field sloppy\.a of mutex-bearing struct sloppy has no concurrency annotation`
	//mmutricks:guarded-by(missing)
	b int // want `guarded-by\(missing\) but missing names no sync\.Mutex`
	//mmutricks:guarded-by(mu)
	//mmutricks:atomic
	e int // want `declares more than one concurrency discipline`
	//mmutricks:guarded-by
	g  int //mmutricks:unsync covered by the malformed directive above // want `malformed annotation on field`
	wg sync.WaitGroup
}

// Package-level var blocks follow the same coverage rule.
var (
	tblMu sync.Mutex
	tbl   = map[string]int{} //mmutricks:guarded-by(tblMu)
	size  int                // want `var size shares a declaration block with a mutex but has no concurrency annotation`
)

func addRow(k string) {
	tblMu.Lock()
	tbl[k] = 1
	size++
	tblMu.Unlock()
}

func rowsBad() int {
	return len(tbl) // want `read of tbl without holding tblMu`
}
