package guardedby_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "locks")
}
