package noalloc_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "a", "b")
}
