// Package b holds noalloc fixtures that must stay clean: an annotated
// call chain built only from allocation-free constructs.
package b

import (
	"math/bits"
	"sync/atomic"
)

type entry struct {
	tag   uint32
	valid bool
}

// Mem is the annotated bus contract; ram implements and annotates it.
type Mem interface {
	//mmutricks:noalloc
	Load(pa uint32) uint32
}

type ram struct {
	words [64]uint32
	hits  atomic.Uint64
}

//mmutricks:noalloc
func (r *ram) Load(pa uint32) uint32 {
	r.hits.Add(1)
	return r.words[pa%64]
}

type table struct {
	entries [16]entry
}

//mmutricks:noalloc
func (t *table) lookup(tag uint32) (uint32, bool) {
	i := index(tag)
	e := &t.entries[i]
	if !e.valid || e.tag != tag {
		return 0, false
	}
	return e.tag, true
}

//mmutricks:noalloc
func index(tag uint32) uint32 {
	return uint32(bits.RotateLeft32(tag, 7)) % 16
}

//mmutricks:noalloc
func Translate(t *table, m Mem, tag uint32) uint32 {
	if t == nil {
		panic("nil table")
	}
	v, ok := t.lookup(tag)
	if !ok {
		v = m.Load(tag)
	}
	n := min(int(v), 42)
	buf := [4]uint32{v, tag, uint32(n), 0}
	var sum uint32
	for _, w := range buf {
		sum += w
	}
	return sum
}

// plain is unannotated, so nothing in its body is checked.
func plain() []entry {
	return append([]entry{}, entry{tag: 1, valid: true})
}
