// Package a holds noalloc fixtures that must be flagged.
package a

import (
	"math/bits"
	"strings"
)

type point struct{ x, y int }

// Bus mirrors the simulator's bus: annotated interface method, so
// calls through it are allowed but implementations must be annotated.
type Bus interface {
	//mmutricks:noalloc
	MemAccess(pa uint32)
}

// badBus implements Bus without the annotation.
type badBus struct{ n uint32 }

func (b *badBus) MemAccess(pa uint32) { b.n += pa } // want `badBus implements //mmutricks:noalloc interface method Bus.MemAccess but is not annotated`

// UnverifiedBus lacks the annotation on its method.
type UnverifiedBus interface {
	MemAccess(pa uint32)
}

//mmutricks:noalloc
func makes() []int {
	m := map[int]int{}      // want `map literal allocates`
	s := []int{1, 2}        // want `slice literal allocates`
	p := &point{1, 2}       // want `&composite literal escapes`
	t := make([]int, 4)     // want `builtin make allocates`
	n := new(point)         // want `builtin new allocates`
	s = append(s, 3)        // want `builtin append allocates`
	m[1] = p.x + n.x + t[0] // want `map store may grow`
	return s
}

//mmutricks:noalloc
func controlFlow() {
	f := func() {} // want `closure allocates`
	go helper()    // want `go statement allocates` `calls helper which is not`
	defer helper() // want `defer may allocate` `calls helper which is not`
	f()            // want `dynamic call through a function value`
}

//mmutricks:noalloc
func stringsAndBoxes(a, b string, v int) string {
	c := a + b            // want `string concatenation allocates`
	bs := []byte(a)       // want `string to slice conversion allocates`
	d := string(bs)       // want `to string conversion allocates`
	var i interface{} = v // want `implicit conversion to interface boxes`
	e := interface{}(v)   // want `conversion to interface boxes`
	sink(v)               // want `implicit conversion to interface boxes` `calls sink which is not`
	variadic(1, 2)        // want `implicit variadic slice allocates` `calls variadic which is not`
	_ = i
	_ = e
	return c + d // want `string concatenation allocates`
}

func sink(v interface{}) { _ = v }

func variadic(vs ...int) {}

func helper() {}

//mmutricks:noalloc
func callees(b Bus, u UnverifiedBus) {
	helper()                   // want `calls helper which is not //mmutricks:noalloc`
	b.MemAccess(1)             // ok: annotated interface method
	u.MemAccess(1)             // want `call through interface method UnverifiedBus.MemAccess which is not`
	_ = bits.OnesCount(7)      // ok: allowlisted stdlib
	_ = strings.Repeat("x", 2) // want `calls strings.Repeat which is outside the verified allowlist`
}

//mmutricks:noalloc
func mapsAndMethods(m map[int]int, b *badBus) {
	m[1] = 2         // want `map store may grow`
	f := b.MemAccess // want `method value allocates`
	f(1)             // want `dynamic call through a function value`
	if len(m) == 0 {
		panic("empty") // ok: cold assertion path
	}
}

//mmutricks:noalloc
func waived() *point {
	return &point{1, 2} //mmutricks:noalloc-ok boot-time only, never on the hot path
}

//mmutricks:noalloc takes-no-arg // want `noalloc takes no argument`
func malformedDirective() {}

//mmutricks:frobnicate // want `unknown directive`
func unknownDirective() {}
