// Package noalloc statically checks functions annotated
// //mmutricks:noalloc for allocating constructs. PR 1 pinned the hot
// translation paths at zero allocations with testing.AllocsPerRun;
// that only fires when a test exercises the exact path, while this
// analyzer proves the property over every path at make-check time.
//
// Inside an annotated function the analyzer flags:
//
//   - make, new, append, print/println
//   - map, slice, and &-escaping composite literals
//   - function literals (closures), go and defer statements
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - implicit interface boxing at assignments, call arguments,
//     returns, and channel sends; implicit variadic slice allocation
//   - map stores (rehash growth)
//   - method values (bound-method closures)
//   - calls to module functions NOT annotated //mmutricks:noalloc,
//     calls to standard-library functions outside a small verified
//     allowlist, and dynamic calls through function values
//
// A call through an interface is allowed only when the interface
// method declaration itself carries //mmutricks:noalloc; the analyzer
// then requires every module implementation of that method to be
// annotated (and therefore checked) too.
//
// panic calls are exempt: they are cold assertion paths.
// A construct can be waived on its line with
// `//mmutricks:noalloc-ok <reason>`.
//
// The construct walk is exported as BodyChecker so the call-graph-aware
// noalloctrans pass (which replaces this analyzer in the default gates)
// can reuse it across package boundaries; this single-function Analyzer
// remains registered for -run selection and as the harness for the
// construct-check fixtures.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check //mmutricks:noalloc functions for allocating constructs and unverified callees (single-function ancestor of noalloctrans)",
	Run:  run,
}

// stdlibAllowed are standard-library packages whose functions are
// trusted not to allocate (leaf arithmetic and atomics).
var stdlibAllowed = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
	"unsafe":      true,
}

// builtinAllowed are allocation-free builtins; panic is allowed as a
// cold assertion path.
var builtinAllowed = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "real": true, "imag": true,
	"panic": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		waived, badWaivers := annotation.LineWaivers(pass.Fset, file)
		for line := range badWaivers {
			pass.Reportf(LineStart(pass.Fset, file, line), "mmutricks:noalloc-ok waiver requires a reason")
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			set := annotation.OfFunc(fd)
			for _, m := range set.Malformed {
				pass.Reportf(annotation.DocDirectivePos(fd.Doc), "malformed mmutricks directive: %s", m)
			}
			if !set.Noalloc || fd.Body == nil {
				continue
			}
			bc := &BodyChecker{
				Fset:   pass.Fset,
				Info:   pass.Info,
				Module: pass.Module,
				Report: pass.Reportf,
				Waived: waived,
			}
			bc.Check(fd)
		}
	}
	CheckInterfaceImpls(pass)
	return nil
}

// LineStart returns a position on the given line of file for reporting.
func LineStart(fset *token.FileSet, file *ast.File, line int) token.Pos {
	tf := fset.File(file.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return file.Pos()
	}
	return tf.LineStart(line)
}

// BodyChecker walks one //mmutricks:noalloc function body and reports
// every allocating construct. It carries explicit file-set/type-info
// dependencies instead of a Pass so callers (noalloctrans) can check
// function bodies from other packages than the one under analysis.
type BodyChecker struct {
	Fset   *token.FileSet
	Info   *types.Info
	Module analysis.ModuleIndex
	// Report receives the diagnostics that survive line waivers.
	Report func(pos token.Pos, format string, args ...any)
	// Waived maps waived line numbers to reasons (annotation.LineWaivers
	// over the file containing the checked function).
	Waived map[int]string
	// OnModuleCallee, when non-nil, replaces the default policy for
	// statically-resolved callees declared in the module (the default
	// flags any callee not annotated //mmutricks:noalloc). Interface
	// calls, stdlib calls, builtins, and dynamic calls keep the default
	// policy either way.
	OnModuleCallee func(call *ast.CallExpr, fn *types.Func, decl *ast.FuncDecl)

	decl *ast.FuncDecl
	// funs marks expressions in call position so method-value detection
	// can skip them.
	funs map[ast.Expr]bool
}

func (c *BodyChecker) flag(pos token.Pos, format string, args ...any) {
	if _, ok := c.Waived[c.Fset.Position(pos).Line]; ok {
		return
	}
	c.Report(pos, format, args...)
}

// Check walks decl's body.
func (c *BodyChecker) Check(decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	c.decl = decl
	c.funs = map[ast.Expr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.funs[call.Fun] = true
		}
		return true
	})
	c.walk(decl.Body)
}

// walk descends the body, skipping the interiors of flagged closures.
func (c *BodyChecker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.flag(n.Pos(), "closure allocates")
			return false
		case *ast.GoStmt:
			c.flag(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			c.flag(n.Pos(), "defer may allocate its record")
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.flag(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.CallExpr:
			return c.call(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			c.returnStmt(n)
		case *ast.SendStmt:
			if ch, ok := typeUnder[*types.Chan](c.typeOf(n.Chan)); ok {
				c.boxing(n.Value, ch.Elem())
			}
		case *ast.SelectorExpr:
			c.methodValue(n)
		case *ast.ValueSpec:
			c.valueSpec(n)
		}
		return true
	})
}

func (c *BodyChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (c *BodyChecker) compositeLit(n *ast.CompositeLit) {
	t := c.typeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.flag(n.Pos(), "map literal allocates")
	case *types.Slice:
		c.flag(n.Pos(), "slice literal allocates its backing array")
	}
}

func (c *BodyChecker) binary(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	tv, ok := c.Info.Types[ast.Expr(n)]
	if !ok || tv.Value != nil { // constant-folded
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.flag(n.Pos(), "string concatenation allocates")
	}
}

// call handles conversions, builtins, and function/method calls. It
// returns false when the walk should not descend into the callee
// expression (it still descends manually into arguments).
func (c *BodyChecker) call(n *ast.CallExpr) bool {
	if tv, ok := c.Info.Types[n.Fun]; ok && tv.IsType() {
		c.conversion(n, tv.Type)
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if b, ok := c.Info.Uses[id].(*types.Builtin); ok {
			if !builtinAllowed[b.Name()] {
				c.flag(n.Pos(), "builtin %s allocates", b.Name())
			}
			// panic's argument boxes, but panics are cold paths: skip
			// the argument check entirely.
			if b.Name() == "panic" {
				return false
			}
			return true
		}
	}
	fn := CalleeFunc(c.Info, n.Fun)
	if fn == nil {
		c.flag(n.Pos(), "dynamic call through a function value cannot be verified allocation-free")
		for _, a := range n.Args {
			c.walk(a)
		}
		return false
	}
	c.callArgs(n)
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		if !annotation.ParseDoc(c.Module.InterfaceMethodDoc(fn)).Noalloc {
			c.flag(n.Pos(), "call through interface method %s.%s which is not //mmutricks:noalloc", recvTypeName(recv.Type()), fn.Name())
		}
		return true
	}
	if decl := c.Module.FuncDecl(fn); decl != nil {
		if c.OnModuleCallee != nil {
			c.OnModuleCallee(n, fn, decl)
		} else if !annotation.OfFunc(decl).Noalloc {
			c.flag(n.Pos(), "calls %s which is not //mmutricks:noalloc", fn.Name())
		}
		return true
	}
	// Outside the module: standard library (or error types).
	pkg := fn.Pkg()
	if pkg == nil || !stdlibAllowed[pkg.Path()] {
		path := "?"
		if pkg != nil {
			path = pkg.Path()
		}
		c.flag(n.Pos(), "calls %s.%s which is outside the verified allowlist", path, fn.Name())
	}
	return true
}

func (c *BodyChecker) conversion(n *ast.CallExpr, dst types.Type) {
	if len(n.Args) != 1 {
		return
	}
	src := c.typeOf(n.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) {
		c.flag(n.Pos(), "conversion to interface boxes")
		return
	}
	db, dOK := dst.Underlying().(*types.Basic)
	_, sSlice := src.Underlying().(*types.Slice)
	if dOK && db.Info()&types.IsString != 0 && sSlice {
		c.flag(n.Pos(), "[]byte/[]rune to string conversion allocates")
		return
	}
	sb, sOK := src.Underlying().(*types.Basic)
	_, dSlice := dst.Underlying().(*types.Slice)
	if sOK && sb.Info()&types.IsString != 0 && dSlice {
		c.flag(n.Pos(), "string to slice conversion allocates")
	}
}

// callArgs checks interface boxing against the callee signature and
// implicit variadic slice allocation.
func (c *BodyChecker) callArgs(n *ast.CallExpr) {
	sig, ok := c.typeOf(n.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := params.At(np - 1).Type()
			if n.Ellipsis.IsValid() {
				pt = last
			} else if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.boxing(arg, pt)
		}
	}
	if sig.Variadic() && !n.Ellipsis.IsValid() && len(n.Args) >= np {
		c.flag(n.Pos(), "implicit variadic slice allocates")
	}
}

// boxing flags expr when assigning it to dst performs an interface
// conversion of a non-interface value.
func (c *BodyChecker) boxing(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.flag(expr.Pos(), "implicit conversion to interface boxes")
}

func (c *BodyChecker) assign(n *ast.AssignStmt) {
	// Map stores can trigger rehash growth.
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := typeUnder[*types.Map](c.typeOf(ix.X)); isMap {
				c.flag(lhs.Pos(), "map store may grow the map")
			}
		}
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			c.boxing(n.Rhs[i], c.typeOf(n.Lhs[i]))
		}
	}
}

func (c *BodyChecker) valueSpec(n *ast.ValueSpec) {
	if n.Type == nil || len(n.Values) == 0 {
		return
	}
	dst := c.typeOf(n.Type)
	for _, v := range n.Values {
		c.boxing(v, dst)
	}
}

func (c *BodyChecker) returnStmt(n *ast.ReturnStmt) {
	obj, ok := c.Info.Defs[c.decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(n.Results) != results.Len() {
		return // bare return or comma-ok spread
	}
	for i, r := range n.Results {
		c.boxing(r, results.At(i).Type())
	}
}

// methodValue flags t.Method used as a value (a bound-method closure).
func (c *BodyChecker) methodValue(n *ast.SelectorExpr) {
	if c.funs[n] {
		return
	}
	if sel, ok := c.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
		c.flag(n.Pos(), "method value allocates a bound-method closure")
	}
}

// typeUnder returns t.Underlying() as U when possible.
func typeUnder[U types.Type](t types.Type) (U, bool) {
	var zero U
	if t == nil {
		return zero, false
	}
	u, ok := t.Underlying().(U)
	return u, ok
}

// CalleeFunc resolves the static callee of a call expression against
// info, or nil for dynamic calls.
func CalleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified package function: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func recvTypeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// CheckInterfaceImpls requires every module implementation of an
// annotated interface method to be annotated itself, so the contract a
// call site relies on is actually verified somewhere. noalloctrans
// shares it.
func CheckInterfaceImpls(pass *analysis.Pass) {
	var annotated []*types.Func
	for fn, doc := range pass.Module.InterfaceMethods() {
		if annotation.ParseDoc(doc).Noalloc {
			annotated = append(annotated, fn)
		}
	}
	if len(annotated) == 0 {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for _, ifn := range annotated {
			iface, ok := ifn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			var impl types.Type
			switch {
			case types.Implements(named, iface):
				impl = named
			case types.Implements(types.NewPointer(named), iface):
				impl = types.NewPointer(named)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, pass.Pkg, ifn.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			decl := pass.Module.FuncDecl(m)
			if decl == nil {
				continue // promoted from an embedded type outside the package
			}
			if !annotation.OfFunc(decl).Noalloc {
				pass.Reportf(decl.Pos(), "%s implements //mmutricks:noalloc interface method %s.%s but is not annotated //mmutricks:noalloc", name, recvTypeName(ifn.Type().(*types.Signature).Recv().Type()), ifn.Name())
			}
		}
	}
}
