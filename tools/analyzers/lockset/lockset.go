// Package lockset is the shared held-lock machinery behind the
// guardedby and lockorder proof passes: mutex-operation recognition,
// stable per-function lock instance keys, and a path-sensitive abstract
// interpreter that walks one function body tracking which locks are
// held at every node.
//
// The abstraction is deliberately simple and sound-by-construction for
// the shapes this repo writes:
//
//   - A lock instance is a pure selector chain rooted at a variable
//     (s.mu, g.mu, s.journal.mu) or a package-level var (poolMu).
//     Anything else (locks in slices, behind interfaces, returned from
//     calls) never registers as held, so accesses it guards are
//     reported rather than silently trusted.
//   - Branches fork the held set and merge by intersection; a branch
//     that terminates (return, panic, os.Exit, break/continue) drops
//     out of the merge, which is what makes the early-unlock-and-return
//     idiom prove clean.
//   - defer mu.Unlock() does not release: the lock stays held to the
//     end of the body, exactly the guarantee the idiom provides.
//   - Loop bodies are interpreted twice when the first pass changes the
//     held set, so a lock released inside an iteration is not presumed
//     held by the next one.
//   - Function literals are NOT walked by Walk: a closure body runs at
//     an unknown time, so analyzers walk each FuncLit separately with
//     an empty entry set. Calls launched by `go` are reported to the
//     OnCall hook with an empty held set for the same reason.
package lockset

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mode is the strength with which a lock is held.
type Mode int

const (
	// Exclusive: held via Lock.
	Exclusive Mode = iota
	// Reader: held via RLock — enough to guard reads, not writes.
	Reader
)

// Key identifies one mutex instance within a function: the root object
// the selector chain starts from (a receiver, parameter, local, or a
// package-level var) plus the dot-joined field path to the mutex
// ("mu", "journal.mu"; empty for a package-level var). Embedded fields
// are expanded to their full path, so a promoted selector and an
// explicit one agree.
type Key struct {
	Root types.Object
	Path string
}

// String renders the key for diagnostics: "s.mu" or "poolMu".
func (k Key) String() string {
	if k.Path == "" {
		return k.Root.Name()
	}
	return k.Root.Name() + "." + k.Path
}

// Held maps the lock instances provably held at a program point to the
// strength they are held with.
type Held map[Key]Mode

// Clone copies a held set.
func (h Held) Clone() Held {
	out := make(Held, len(h))
	for k, m := range h {
		out[k] = m
	}
	return out
}

// Intersect keeps the locks held in both sets, at the weaker strength.
func Intersect(a, b Held) Held {
	out := Held{}
	for k, ma := range a {
		mb, ok := b[k]
		if !ok {
			continue
		}
		m := ma
		if mb == Reader {
			m = Reader
		}
		out[k] = m
	}
	return out
}

// Equal reports whether two held sets hold the same locks at the same
// strengths.
func Equal(a, b Held) bool {
	if len(a) != len(b) {
		return false
	}
	for k, m := range a {
		if mb, ok := b[k]; !ok || mb != m {
			return false
		}
	}
	return true
}

// Op classifies a call as a mutex operation.
type Op int

const (
	OpNone Op = iota
	OpLock
	OpUnlock
	OpRLock
	OpRUnlock
)

// IsMutexType reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex; rw reports which.
func IsMutexType(t types.Type) (isMutex, rw bool) {
	if t == nil {
		return false, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// MutexOp classifies call as a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex reached through a resolvable selector
// chain. op is OpNone when the call is not a mutex operation; ok is
// false when it is one but the receiver chain cannot be keyed (the
// walker then leaves the held set unchanged, which is conservative).
func MutexOp(info *types.Info, call *ast.CallExpr) (k Key, class string, op Op, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Key{}, "", OpNone, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "Unlock":
		op = OpUnlock
	case "RLock":
		op = OpRLock
	case "RUnlock":
		op = OpRUnlock
	default:
		return Key{}, "", OpNone, false
	}
	tv, okT := info.Types[sel.X]
	if !okT {
		return Key{}, "", OpNone, false
	}
	if isMutex, _ := IsMutexType(tv.Type); !isMutex {
		return Key{}, "", OpNone, false
	}
	k, class, ok = ExprKey(info, sel.X)
	return k, class, op, ok
}

// ExprKey resolves a pure selector chain (s.mu, s.journal.mu, poolMu,
// pkg.Var) to its instance key and its lock class. The class is the
// package-qualified declaration site — "path/to/pkg.Type.field" for a
// struct field, "path/to/pkg.var" for a package-level var — and is
// what the lockorder DAG is keyed by. ok is false for anything that is
// not a chain of plain field selections rooted at a variable.
func ExprKey(info *types.Info, e ast.Expr) (k Key, class string, ok bool) {
	root, parts, owner, ok := chain(info, e)
	if !ok {
		return Key{}, "", false
	}
	k = Key{Root: root, Path: strings.Join(parts, ".")}
	if len(parts) == 0 {
		if root.Pkg() != nil {
			class = root.Pkg().Path() + "." + root.Name()
		}
		return k, class, true
	}
	if owner != nil {
		if p, okP := owner.Underlying().(*types.Pointer); okP {
			owner = p.Elem()
		}
		if named, okN := owner.(*types.Named); okN && named.Obj().Pkg() != nil {
			class = named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + parts[len(parts)-1]
		}
	}
	return k, class, true
}

// chain decomposes e into a root variable plus the expanded field path,
// returning the type owning the final field (for class naming).
func chain(info *types.Info, e ast.Expr) (root types.Object, parts []string, owner types.Type, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, okV := obj.(*types.Var); okV {
			return v, nil, nil, true
		}
		return nil, nil, nil, false
	case *ast.StarExpr:
		return chain(info, x.X)
	case *ast.SelectorExpr:
		// Package-qualified var: pkg.Var.
		if id, okI := ast.Unparen(x.X).(*ast.Ident); okI {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, okV := info.Uses[x.Sel].(*types.Var); okV {
					return v, nil, nil, true
				}
				return nil, nil, nil, false
			}
		}
		selinfo, okS := info.Selections[x]
		if !okS || selinfo.Kind() != types.FieldVal {
			return nil, nil, nil, false
		}
		root, parts, _, ok = chain(info, x.X)
		if !ok {
			return nil, nil, nil, false
		}
		// Expand the (possibly embedded) field index path so promoted
		// and explicit selectors key identically.
		t := selinfo.Recv()
		for _, idx := range selinfo.Index() {
			if p, okP := t.Underlying().(*types.Pointer); okP {
				t = p.Elem()
			}
			st, okSt := t.Underlying().(*types.Struct)
			if !okSt {
				return nil, nil, nil, false
			}
			f := st.Field(idx)
			parts = append(parts, f.Name())
			owner = t
			t = f.Type()
		}
		return root, parts, owner, true
	}
	return nil, nil, nil, false
}

// Hooks are the analyzer callbacks the walker drives.
type Hooks struct {
	// OnNode fires for every expression node in evaluation order with
	// the held set at that point. Loop bodies may fire twice per node
	// (two-pass interpretation); analyzers dedupe diagnostics.
	OnNode func(n ast.Node, held Held)
	// OnAcquire fires when a Lock/RLock executes, with the held set
	// BEFORE the new lock is added (the lockorder edge source set).
	OnAcquire func(call *ast.CallExpr, k Key, class string, m Mode, held Held)
	// OnCall fires for every non-mutex-op call with the held set at the
	// call. Calls launched by `go` fire with an empty held set (they
	// run concurrently); deferred calls fire with the set at the defer
	// statement.
	OnCall func(call *ast.CallExpr, held Held)
}

// Walk interprets body with the given entry held set, driving hooks.
// It does not descend into function literals — walk those separately
// with an empty entry set.
func Walk(info *types.Info, body *ast.BlockStmt, entry Held, hooks Hooks) {
	w := &walker{info: info, hooks: hooks}
	if entry == nil {
		entry = Held{}
	}
	w.block(body, entry.Clone())
}

type walker struct {
	info  *types.Info
	hooks Hooks
}

// block interprets a statement list, returning the exit held set and
// whether control never falls out the bottom.
func (w *walker) block(b *ast.BlockStmt, h Held) (Held, bool) {
	if b == nil {
		return h, false
	}
	return w.stmts(b.List, h)
}

func (w *walker) stmts(list []ast.Stmt, h Held) (Held, bool) {
	for _, s := range list {
		var term bool
		h, term = w.stmt(s, h)
		if term {
			return h, true
		}
	}
	return h, false
}

// stmt interprets one statement; the returned bool reports termination
// (return, panic, os.Exit, break/continue/goto — control does not reach
// the next statement of the enclosing block).
func (w *walker) stmt(s ast.Stmt, h Held) (Held, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return h, false
	case *ast.BlockStmt:
		return w.block(s, h)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if k, class, op, okKey := w.mutexOp(call, h); op != OpNone {
				return w.applyOp(call, k, class, op, okKey, h), false
			}
		}
		w.expr(s.X, h)
		return h, w.terminates(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, h)
		}
		for _, e := range s.Lhs {
			w.expr(e, h)
		}
		return h, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, okV := spec.(*ast.ValueSpec); okV {
					for _, v := range vs.Values {
						w.expr(v, h)
					}
				}
			}
		}
		return h, false
	case *ast.IncDecStmt:
		w.expr(s.X, h)
		return h, false
	case *ast.SendStmt:
		w.expr(s.Value, h)
		w.expr(s.Chan, h)
		return h, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, h)
		}
		return h, true
	case *ast.BranchStmt:
		return h, true
	case *ast.DeferStmt:
		if _, _, op, _ := MutexOp(w.info, s.Call); op == OpUnlock || op == OpRUnlock {
			// Deferred unlock: the lock stays held to the end of the
			// body; only walk the receiver chain for OnNode.
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
				w.expr(sel.X, h)
			}
			return h, false
		}
		w.expr(s.Call, h)
		return h, false
	case *ast.GoStmt:
		// Arguments and the callee chain are evaluated now, under h;
		// the call itself runs concurrently with nothing held.
		for _, a := range s.Call.Args {
			w.expr(a, h)
		}
		w.exprNodesOnly(s.Call.Fun, h)
		if w.hooks.OnCall != nil {
			w.hooks.OnCall(s.Call, Held{})
		}
		return h, false
	case *ast.IfStmt:
		h, _ = w.stmt(s.Init, h)
		w.expr(s.Cond, h)
		thenH, thenT := w.block(s.Body, h.Clone())
		elseH, elseT := h, false
		if s.Else != nil {
			elseH, elseT = w.stmt(s.Else, h.Clone())
		}
		switch {
		case thenT && elseT:
			return h, true
		case thenT:
			return elseH, false
		case elseT:
			return thenH, false
		default:
			return Intersect(thenH, elseH), false
		}
	case *ast.ForStmt:
		h, _ = w.stmt(s.Init, h)
		exit := w.loopPass(s.Cond, s.Body, s.Post, h)
		after := h
		if exit != nil {
			if !Equal(exit, h) {
				entry2 := Intersect(h, exit)
				if exit2 := w.loopPass(s.Cond, s.Body, s.Post, entry2); exit2 != nil {
					exit = exit2
				}
			}
			after = Intersect(h, exit)
		}
		return after, false
	case *ast.RangeStmt:
		w.expr(s.X, h)
		w.expr(s.Key, h)
		w.expr(s.Value, h)
		exit := w.loopPass(nil, s.Body, nil, h)
		after := h
		if exit != nil {
			if !Equal(exit, h) {
				entry2 := Intersect(h, exit)
				if exit2 := w.loopPass(nil, s.Body, nil, entry2); exit2 != nil {
					exit = exit2
				}
			}
			after = Intersect(h, exit)
		}
		return after, false
	case *ast.SwitchStmt:
		h, _ = w.stmt(s.Init, h)
		w.expr(s.Tag, h)
		return w.caseMerge(s.Body, h, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		h, _ = w.stmt(s.Init, h)
		h, _ = w.stmt(s.Assign, h)
		return w.caseMerge(s.Body, h, hasDefault(s.Body))
	case *ast.SelectStmt:
		// Every comm clause is a possible sole successor; with no
		// default, one of them always runs eventually, so the merge is
		// over the clauses alone — but falling back to h is the safe
		// (smaller) answer either way, so treat select like a switch
		// without a default.
		return w.caseMerge(s.Body, h, false)
	default:
		return h, false
	}
}

// loopPass interprets one loop iteration; nil means the body never
// completes an iteration (it always terminates early).
func (w *walker) loopPass(cond ast.Expr, body *ast.BlockStmt, post ast.Stmt, h Held) Held {
	w.expr(cond, h)
	exit, term := w.block(body, h.Clone())
	if term {
		return nil
	}
	exit, _ = w.stmt(post, exit)
	return exit
}

// caseMerge interprets each clause body of a switch/select from h and
// intersects the non-terminating exits; unless the statement has a
// default clause, h itself joins the merge (the no-case-taken path).
func (w *walker) caseMerge(body *ast.BlockStmt, h Held, withDefault bool) (Held, bool) {
	var exits []Held
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, h)
			}
			stmts = c.Body
		case *ast.CommClause:
			ch := h.Clone()
			ch, _ = w.stmt(c.Comm, ch)
			exit, term := w.stmts(c.Body, ch)
			if !term {
				exits = append(exits, exit)
			}
			continue
		default:
			continue
		}
		exit, term := w.stmts(stmts, h.Clone())
		if !term {
			exits = append(exits, exit)
		}
	}
	if !withDefault {
		exits = append(exits, h)
	}
	if len(exits) == 0 {
		return h, true
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = Intersect(out, e)
	}
	return out, false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if c, ok := cs.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// mutexOp wraps MutexOp, firing OnNode over the receiver chain (the
// chain is evaluated like any expression).
func (w *walker) mutexOp(call *ast.CallExpr, h Held) (Key, string, Op, bool) {
	k, class, op, ok := MutexOp(w.info, call)
	if op != OpNone {
		if sel, okS := ast.Unparen(call.Fun).(*ast.SelectorExpr); okS {
			w.expr(sel.X, h)
		}
	}
	return k, class, op, ok
}

// applyOp transitions the held set for a statement-level mutex op.
func (w *walker) applyOp(call *ast.CallExpr, k Key, class string, op Op, okKey bool, h Held) Held {
	if !okKey {
		return h // unkeyable mutex: never record as held
	}
	switch op {
	case OpLock:
		if w.hooks.OnAcquire != nil {
			w.hooks.OnAcquire(call, k, class, Exclusive, h)
		}
		h[k] = Exclusive
	case OpRLock:
		if w.hooks.OnAcquire != nil {
			w.hooks.OnAcquire(call, k, class, Reader, h)
		}
		if _, held := h[k]; !held {
			h[k] = Reader
		}
	case OpUnlock, OpRUnlock:
		delete(h, k)
	}
	return h
}

// expr fires OnNode for every node of e in evaluation order and OnCall
// for every non-mutex-op call, without descending into FuncLits.
func (w *walker) expr(e ast.Expr, h Held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if w.hooks.OnNode != nil {
			w.hooks.OnNode(n, h)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, op, _ := MutexOp(w.info, call); op == OpNone && w.hooks.OnCall != nil {
				w.hooks.OnCall(call, h)
			}
		}
		return true
	})
}

// exprNodesOnly fires OnNode without OnCall (the `go` callee chain).
func (w *walker) exprNodesOnly(e ast.Expr, h Held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if w.hooks.OnNode != nil {
			w.hooks.OnNode(n, h)
		}
		return true
	})
}

// terminates reports whether the expression statement never returns:
// the panic builtin, os.Exit, or runtime.Goexit.
func (w *walker) terminates(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, okB := w.info.Uses[fun].(*types.Builtin); okB && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if fn, okF := w.info.Uses[fun.Sel].(*types.Func); okF && fn.Pkg() != nil {
			full := fn.Pkg().Path() + "." + fn.Name()
			if full == "os.Exit" || full == "runtime.Goexit" {
				return true
			}
		}
	}
	return false
}
