// Package report is a fixture for experiment-Run roots: functions
// wired into an Experiment literal carry the same obligation tests do.
package report

import "kernel"

// Experiment mirrors the report package's registration record.
type Experiment struct {
	ID  string
	Run func() error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

func init() {
	register(Experiment{ID: "sec5.flush", Run: runFlush})
	register(Experiment{ID: "sec6.swap", Run: runSwapChecked})
}

// Flagged: an experiment that mutates without checking.
func runFlush() error { // want `runFlush mutates kernel translation state but never calls CheckConsistency`
	k := &kernel.Kernel{}
	k.FlushTaskContext(3)
	return nil
}

// Clean: mutates, then validates.
func runSwapChecked() error {
	k := &kernel.Kernel{}
	k.Swap(1)
	return k.CheckConsistency()
}
