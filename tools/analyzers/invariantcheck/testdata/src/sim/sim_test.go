// Package sim holds test-root fixtures for invariantcheck.
package sim

import (
	"kernel"
	"testing"
)

// Flagged: mutates translation state and never validates.
func TestSwapNoCheck(t *testing.T) { // want `TestSwapNoCheck mutates kernel translation state but never calls CheckConsistency`
	k := &kernel.Kernel{}
	k.Fork()
	k.Swap(1)
}

// Clean: validates after mutating.
func TestSwapChecked(t *testing.T) {
	k := &kernel.Kernel{}
	k.Swap(1)
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Clean: the check may live in a same-package helper.
func TestSwapHelperChecked(t *testing.T) {
	k := &kernel.Kernel{}
	k.Swap(2)
	mustConsistent(t, k)
}

func mustConsistent(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Flagged transitively: the mutation hides in a helper.
func TestMutateViaHelper(t *testing.T) { // want `TestMutateViaHelper mutates kernel translation state but never calls CheckConsistency`
	k := &kernel.Kernel{}
	churn(k)
}

func churn(k *kernel.Kernel) {
	k.FlushTaskContext(9)
}

// Clean: reads carry no obligation.
func TestStats(t *testing.T) {
	k := &kernel.Kernel{}
	_ = k.Stats()
}

// Waived: the state is deliberately abandoned mid-mutation.
//
//mmutricks:nocheck panics mid-flush by design; state is unreachable after
func TestAbandoned(t *testing.T) {
	k := &kernel.Kernel{}
	k.FlushTaskContext(1)
}

// Benchmarks are exempt: a consistency sweep inside the timed loop
// distorts the measurement.
func BenchmarkSwap(b *testing.B) {
	k := &kernel.Kernel{}
	for i := 0; i < b.N; i++ {
		k.Swap(i)
	}
}
