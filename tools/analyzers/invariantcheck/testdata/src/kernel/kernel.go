// Package kernel is a fixture stand-in for the simulator's kernel:
// the mutator surface invariantcheck watches, plus the checker itself.
package kernel

// Kernel models the translation-state owner.
type Kernel struct {
	generation int
	zombies    int
}

// Fork duplicates translation state (COW path).
func (k *Kernel) Fork() { k.generation++ }

// Swap evicts n frames.
func (k *Kernel) Swap(n int) { k.zombies += n }

// FlushTaskContext lazily flushes a task's mappings.
func (k *Kernel) FlushTaskContext(id int) { k.zombies++ }

// Stats is a read-only accessor, not a mutator.
func (k *Kernel) Stats() int { return k.zombies }

// CheckConsistency validates the coherence invariants.
func (k *Kernel) CheckConsistency() error { return nil }
