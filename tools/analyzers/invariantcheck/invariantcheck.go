// Package invariantcheck enforces the lazy-flush safety net: any test
// or experiment that mutates kernel translation state through the
// flush/swap/COW entry points must validate Kernel.CheckConsistency
// before asserting results. Lazy flushing deliberately leaves
// stale-looking state around (zombie PTEs, unmatchable TLB entries);
// a test that drives those paths without the checker can pass while
// the coherence invariants rot.
//
// Roots are Test* functions (in _test.go files) and experiment Run
// functions (functions assigned to the Run field of a report
// Experiment literal). A root is flagged when it transitively — via
// same-package static calls — invokes a translation-state mutator
// (Kernel.FlushTaskContext, Swap, Exec, Exit, Fork, Switch,
// RunIdleFor, SysMunmap, SysMprotect, SysBrk, SysKill) but never
// transitively calls a method named CheckConsistency.
//
// Benchmark* and Fuzz* functions are exempt: a consistency sweep
// inside a timed or fuzzing loop distorts what those harnesses
// measure; the mirrored Test functions carry the obligation. A Test
// root can be waived with `//mmutricks:nocheck <reason>`.
package invariantcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "invariantcheck",
	Doc:  "require tests and experiments that mutate kernel translation state to call CheckConsistency",
	Run:  run,
}

// mutators are the kernel.Kernel methods that mutate translation state
// (flush machinery, swap, COW via fork/exec/exit, unmap/protect).
var mutators = map[string]bool{
	"FlushTaskContext": true, "Swap": true, "Exec": true, "Exit": true,
	"Fork": true, "Switch": true, "RunIdleFor": true,
	"SysMunmap": true, "SysMprotect": true, "SysBrk": true, "SysKill": true,
	"SwitchToIdle": true, "UseMM": true, "UnuseMM": true,
}

type summary struct {
	mutates bool
	checks  bool
}

func run(pass *analysis.Pass) error {
	a := &analyzer{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}, sums: map[*types.Func]*summary{}}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					a.decls[fn] = fd
				}
			}
		}
	}
	roots := a.findRoots()
	for _, root := range roots {
		fd := a.decls[root]
		s := a.summarize(root, map[*types.Func]bool{})
		if !s.mutates || s.checks {
			continue
		}
		set := annotation.OfFunc(fd)
		for _, m := range set.Malformed {
			pass.Reportf(annotation.DocDirectivePos(fd.Doc), "malformed mmutricks directive: %s", m)
		}
		if set.Nocheck {
			continue
		}
		pass.Reportf(fd.Pos(), "%s mutates kernel translation state but never calls CheckConsistency; add a check or annotate //mmutricks:nocheck <reason>", root.Name())
	}
	return nil
}

type analyzer struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*summary
}

// findRoots returns the functions that carry the check obligation:
// TestXxx functions and report experiment Run functions.
func (a *analyzer) findRoots() []*types.Func {
	var roots []*types.Func
	for fn, fd := range a.decls {
		if isTestFile(a.pass, fd) && strings.HasPrefix(fn.Name(), "Test") && fd.Recv == nil {
			roots = append(roots, fn)
		}
	}
	// Experiment Run fields: register(Experiment{..., Run: runFoo}).
	for _, file := range a.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if named, ok := a.pass.Info.Types[lit].Type.(*types.Named); !ok || named.Obj().Name() != "Experiment" {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Run" {
					continue
				}
				if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
					if fn, ok := a.pass.Info.Uses[id].(*types.Func); ok && a.decls[fn] != nil {
						roots = append(roots, fn)
					}
				}
			}
			return true
		})
	}
	return roots
}

func isTestFile(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	return strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go")
}

// summarize computes {mutates, checks} for fn over same-package static
// calls.
func (a *analyzer) summarize(fn *types.Func, inProgress map[*types.Func]bool) *summary {
	if s, ok := a.sums[fn]; ok {
		return s
	}
	if inProgress[fn] {
		return &summary{}
	}
	inProgress[fn] = true
	defer delete(inProgress, fn)

	s := &summary{}
	fd := a.decls[fn]
	if fd == nil {
		return s
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := a.callee(call)
		if callee == nil {
			return true
		}
		name := callee.Name()
		switch {
		case name == "CheckConsistency":
			s.checks = true
		case mutators[name] && onKernel(callee):
			s.mutates = true
		case a.decls[callee] != nil:
			cs := a.summarize(callee, inProgress)
			s.mutates = s.mutates || cs.mutates
			s.checks = s.checks || cs.checks
		}
		return true
	})
	a.sums[fn] = s
	return s
}

func (a *analyzer) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := a.pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := a.pass.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := a.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// onKernel reports whether fn is a method on a type named Kernel in a
// package named kernel.
func onKernel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Kernel" && named.Obj().Pkg().Name() == "kernel"
}
