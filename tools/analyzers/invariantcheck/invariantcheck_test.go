package invariantcheck_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/invariantcheck"
)

func TestInvariantcheck(t *testing.T) {
	analysistest.Run(t, "testdata", invariantcheck.Analyzer, "kernel", "sim", "report")
}
