// Package suite is the single registry of the repo's analyzers and the
// shared command-line driver behind cmd/mmulint and cmd/mmuprove.
// Adding an analyzer is a one-line registration in the set it belongs
// to; both tools pick it up, and -list prints it.
//
// The sets:
//
//   - Lint: structural hygiene checks run by mmulint — cycle-accounting
//     completeness, invariant checking in state-mutating tests, and
//     experiment-registration hygiene.
//   - Prove: whole-program proofs run by mmuprove — transitive noalloc
//     over the call graph, determinism of byte-identical output
//     packages, counter↔trace parity, model↔kernel transition
//     parity, telemetry phase-span balance, the guarded-by mutex
//     discipline, and the pinned lock-acquisition order.
//   - Extra: registered and selectable via -run, but in no default set.
//     The single-function noalloc pass lives here: noalloctrans
//     subsumes it, and running both would double-report.
package suite

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/cyclecost"
	"mmutricks/tools/analyzers/determinism"
	"mmutricks/tools/analyzers/driver"
	"mmutricks/tools/analyzers/guardedby"
	"mmutricks/tools/analyzers/invariantcheck"
	"mmutricks/tools/analyzers/load"
	"mmutricks/tools/analyzers/lockorder"
	"mmutricks/tools/analyzers/noalloc"
	"mmutricks/tools/analyzers/noalloctrans"
	"mmutricks/tools/analyzers/parity"
	"mmutricks/tools/analyzers/phasebalance"
	"mmutricks/tools/analyzers/registry"
	"mmutricks/tools/analyzers/transitions"
)

// Lint is the default set for cmd/mmulint.
var Lint = []*analysis.Analyzer{
	cyclecost.Analyzer,
	invariantcheck.Analyzer,
	registry.Analyzer,
}

// Prove is the default set for cmd/mmuprove.
var Prove = []*analysis.Analyzer{
	noalloctrans.Analyzer,
	determinism.Analyzer,
	parity.Analyzer,
	transitions.Analyzer,
	phasebalance.Analyzer,
	guardedby.Analyzer,
	lockorder.Analyzer,
}

// Extra holds analyzers in no default set, still selectable via -run.
var Extra = []*analysis.Analyzer{
	noalloc.Analyzer,
}

// All returns every registered analyzer, default sets first.
func All() []*analysis.Analyzer {
	var all []*analysis.Analyzer
	all = append(all, Lint...)
	all = append(all, Prove...)
	all = append(all, Extra...)
	return all
}

// Main is the shared driver: parse flags, load packages, run the
// tool's default analyzers (or the -run selection from the full
// registry), print vet-style diagnostics, and exit 1 on a non-empty
// report or 2 on load errors. tool names the binary in messages.
func Main(tool string, defaults []*analysis.Analyzer) {
	list := flag.Bool("list", false, "list all registered analyzers and exit")
	tests := flag.Bool("tests", true, "analyze _test.go files too")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: this tool's set)")
	flag.Parse()

	if *list {
		inSet := map[string]bool{}
		for _, a := range defaults {
			inSet[a.Name] = true
		}
		for _, a := range All() {
			mark := " "
			if inSet[a.Name] {
				mark = "*"
			}
			fmt.Printf("%s %-15s %s\n", mark, a.Name, firstLine(a.Doc))
		}
		fmt.Printf("\n* = in %s's default set\n", tool)
		return
	}

	analyzers := defaults
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All() {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: unknown analyzer %q\n", tool, name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	diags, err := driver.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		fmt.Println(Format(d, wd))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Format renders one diagnostic vet-style, with the filename relative
// to wd when it sits underneath it.
func Format(d driver.Diag, wd string) string {
	name := d.Pos.Filename
	if wd != "" {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", name, d.Pos.Line, d.Pos.Column, d.Category, d.Message)
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}
