package phasebalance_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/phasebalance"
)

func TestPhaseBalance(t *testing.T) {
	analysistest.Run(t, "testdata", phasebalance.Analyzer,
		"kernel", "mmutricks/internal/telemetry")
}
