// Package kernel is the phasebalance fixture: every balanced opener
// shape the real kernel uses, plus the violations and waivers.
package kernel

import "mmutricks/internal/telemetry"

type K struct {
	Ph   *telemetry.Phases
	hook func()
}

// span is an opener: it returns Span's result, so its own call sites
// carry the balance obligation.
func (k *K) span(ph telemetry.Phase) func() { return k.Ph.Span(ph) }

// entry is an opener through the assigned-then-returned shape.
func (k *K) entry() func() {
	done := k.span(1)
	return done
}

// deferred: the canonical shape.
func (k *K) deferred() {
	defer k.span(0)()
}

// immediate: a degenerate span, entered and exited in place.
func (k *K) immediate() {
	k.span(0)()
}

// viaEntry: the syscallEntry pattern two openers deep.
func (k *K) viaEntry() {
	defer k.entry()()
}

// localDefer: assignment consumed by a defer.
func (k *K) localDefer() {
	exit := k.span(0)
	defer exit()
}

// localCall: assignment consumed by a direct call.
func (k *K) localCall() {
	exit := k.span(0)
	k.work()
	exit()
}

func (k *K) work() {}

// leaked: the closure is dropped — the span can never exit.
func (k *K) leaked() {
	k.span(0) // want `span opener span used outside a balanced shape`
}

// deferredOpener: defers the opener itself, dropping the exit closure.
func (k *K) deferredOpener() {
	defer k.span(0) // want `span opener span used outside a balanced shape`
}

// stored: the closure escapes into a field; no syntactic balance.
func (k *K) stored() {
	k.hook = k.span(0) // want `span opener span used outside a balanced shape`
}

// passed: the closure escapes as an argument.
func (k *K) passed() {
	run(k.span(0)) // want `span opener span used outside a balanced shape`
}

func run(f func()) { f() }

// halfUsed: one use is balanced, another branches on it.
func (k *K) halfUsed() {
	exit := k.span(0) // want `span opener span used outside a balanced shape`
	if exit != nil {
		exit()
	}
}

// rawEnter and rawExit: the primitives are forbidden outside telemetry.
func (k *K) rawEnter() {
	k.Ph.Enter(0) // want `calls telemetry.Phases.Enter directly`
	k.Ph.Exit()   // want `calls telemetry.Phases.Exit directly`
}

// waived: the waiver vouches for the unprovable shape.
func (k *K) waived() {
	k.hook = k.span(0) //mmutricks:phasebalance-ok exit invoked by the interrupt return path
}
