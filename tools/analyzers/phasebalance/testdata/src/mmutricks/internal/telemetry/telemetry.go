// Package telemetry is the phasebalance fixture stub: just enough
// surface for the opener seed (Span) and the forbidden raw primitives.
package telemetry

type Phase int

type Phases struct{}

func (p *Phases) Span(ph Phase) func() { return func() {} }

// Enter and Exit are balanced here without Span — the analyzer exempts
// the telemetry package itself.
func (p *Phases) Enter(ph Phase) {}
func (p *Phases) Exit()          {}

func (p *Phases) internallyBalanced(ph Phase) {
	p.Enter(ph)
	p.Exit()
}
