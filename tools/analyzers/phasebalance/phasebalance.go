// Package phasebalance proves the phase-stack discipline: every phase
// entered through telemetry.(*Phases).Span is exited on all paths, so
// the conservation identity CheckConsistency enforces at runtime can
// never be broken by a leaked span.
//
// The proof is shape-based. Span returns an exit closure that must be
// called exactly once; the pass pins every call to an *opener* — Span
// itself, or any function that returns an opener's result (the
// kernel's span and syscallEntry helpers) — to one of the shapes whose
// balance is self-evident:
//
//	defer f(...)()      // exit runs on every path out of the frame
//	f(...)()            // degenerate span, entered and exited in place
//	return f(...)       // obligation moves to the caller, which this
//	                    // pass checks because the function is now an
//	                    // opener itself
//	x := f(...)         // allowed only when every use of x is
//	                    // `defer x()`, `x()`, or `return x`
//
// Any other use — storing the closure in a field, passing it as an
// argument, branching on it, dropping it — is reported: no syntactic
// argument can show such a closure runs exactly once per entry. Openers
// are discovered transitively across package boundaries through the
// module index, so a new helper wrapping k.span inherits the obligation
// without registration.
//
// The raw primitives Enter and Exit are reported anywhere outside the
// telemetry package itself: their balance depends on control flow the
// pass cannot see, and Span costs the same.
//
// //mmutricks:phasebalance-ok <reason> on the offending line waives a
// finding (the reason is mandatory).
package phasebalance

import (
	"go/ast"
	"go/types"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/annotation"
	"mmutricks/tools/analyzers/noalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "phasebalance",
	Doc:  "prove every telemetry phase Span is exited on all paths (opener shapes only)",
	Run:  run,
}

// telemetryPkg is the package whose internals are exempt: it implements
// the discipline the rest of the module is held to.
const telemetryPkg = "mmutricks/internal/telemetry"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == telemetryPkg {
		return nil
	}
	a := &checker{pass: pass, openers: map[*types.Func]int{}}
	for _, file := range pass.Files {
		waived, malformed := annotation.Waivers(pass.Fset, file, "phasebalance-ok")
		for line := range malformed {
			pass.Reportf(noalloc.LineStart(pass.Fset, file, line), "mmutricks:phasebalance-ok waiver requires a reason")
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(fd, waived)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// openers memoizes isOpener: 0 unvisited, 1 in progress or false,
	// 2 true.
	openers map[*types.Func]int
}

// isSeed reports whether fn is telemetry.(*Phases).Span — the root
// opener.
func isSeed(fn *types.Func) bool {
	return fn.Name() == "Span" && fn.Pkg() != nil && fn.Pkg().Path() == telemetryPkg
}

// isRawPrimitive reports whether fn is telemetry.(*Phases).Enter or
// Exit — forbidden outside their own package.
func isRawPrimitive(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkg {
		return false
	}
	if fn.Name() != "Enter" && fn.Name() != "Exit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isOpener reports whether fn's result is a span-exit closure: Span
// itself, or a module function with a single func() result at least
// one of whose returns traces to an opener call. Cycles resolve to
// false (a recursive "opener" proves nothing).
func (c *checker) isOpener(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if isSeed(fn) {
		return true
	}
	switch c.openers[fn] {
	case 1:
		return false
	case 2:
		return true
	}
	c.openers[fn] = 1
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isExitFuncType(sig.Results().At(0).Type()) {
		return false
	}
	decl, _, info := c.pass.Module.FuncSource(fn)
	if decl == nil || decl.Body == nil || info == nil {
		return false
	}
	// Locals assigned from opener calls count as opener results when
	// returned (the syscallEntry shape: done := k.span(...); return done).
	vars := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && c.isOpener(noalloc.CalleeFunc(info, call.Fun)) {
			if obj := info.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
		return true
	})
	opener := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		switch e := ast.Unparen(ret.Results[0]).(type) {
		case *ast.CallExpr:
			if c.isOpener(noalloc.CalleeFunc(info, e.Fun)) {
				opener = true
			}
		case *ast.Ident:
			if vars[info.ObjectOf(e)] {
				opener = true
			}
		}
		return true
	})
	if opener {
		c.openers[fn] = 2
	}
	return opener
}

// isExitFuncType reports whether t is func() — the exit-closure type.
func isExitFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0 && sig.Recv() == nil
}

// checkFunc pins every opener call in one body to a balanced shape.
func (c *checker) checkFunc(fd *ast.FuncDecl, waived map[int]string) {
	info := c.pass.Info
	// ok collects the opener calls consumed by a balanced shape; the
	// sweep below reports the rest.
	ok := map[*ast.CallExpr]bool{}
	openerCall := func(e ast.Expr) *ast.CallExpr {
		call, isCall := ast.Unparen(e).(*ast.CallExpr)
		if isCall && c.isOpener(noalloc.CalleeFunc(info, call.Fun)) {
			return call
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer f(...)(): the deferred function is the opener result.
			if call := openerCall(n.Call.Fun); call != nil {
				ok[call] = true
			}
		case *ast.ExprStmt:
			// f(...)(): entered and exited in place.
			if outer, isCall := n.X.(*ast.CallExpr); isCall {
				if call := openerCall(outer.Fun); call != nil {
					ok[call] = true
				}
			}
		case *ast.ReturnStmt:
			// return f(...): the enclosing function becomes an opener and
			// its callers carry the obligation.
			if len(n.Results) == 1 {
				if call := openerCall(n.Results[0]); call != nil {
					ok[call] = true
				}
			}
		case *ast.AssignStmt:
			// x := f(...): every use of x must itself be balanced.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call := openerCall(n.Rhs[0]); call != nil {
					if id, isIdent := n.Lhs[0].(*ast.Ident); isIdent && c.varUsesBalanced(fd, info.ObjectOf(id)) {
						ok[call] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		fn := noalloc.CalleeFunc(info, call.Fun)
		line := c.pass.Fset.Position(call.Pos()).Line
		if _, w := waived[line]; w {
			return true
		}
		if isRawPrimitive(fn) {
			c.pass.Reportf(call.Pos(), "calls telemetry.Phases.%s directly; use Span so the exit is provably paired", fn.Name())
			return true
		}
		if c.isOpener(fn) && !ok[call] {
			c.pass.Reportf(call.Pos(),
				"span opener %s used outside a balanced shape (want `defer f(...)()`, `f(...)()`, `return f(...)`, or `x := f(...)` with every use of x a defer/call/return)",
				fn.Name())
		}
		return true
	})
}

// varUsesBalanced reports whether every use of obj inside fd (other
// than its defining assignment) is one of `defer x()`, `x()`, or
// `return x`, with at least one use — the shapes under which the
// closure provably runs.
func (c *checker) varUsesBalanced(fd *ast.FuncDecl, obj types.Object) bool {
	if obj == nil {
		return false
	}
	info := c.pass.Info
	// consumed marks ident uses sitting in a balanced shape.
	consumed := map[*ast.Ident]bool{}
	isObj := func(e ast.Expr) *ast.Ident {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.ObjectOf(id) == obj {
			return id
		}
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if id := isObj(n.Call.Fun); id != nil && len(n.Call.Args) == 0 {
				consumed[id] = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && len(call.Args) == 0 {
				if id := isObj(call.Fun); id != nil {
					consumed[id] = true
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 1 {
				if id := isObj(n.Results[0]); id != nil {
					consumed[id] = true
				}
			}
		}
		return true
	})
	uses := 0
	balanced := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return true
		}
		// The defining occurrence is the one in info.Defs.
		if info.Defs[id] == obj {
			return true
		}
		uses++
		if !consumed[id] {
			balanced = false
		}
		return true
	})
	return balanced && uses > 0
}
