// Package analysistest runs one analyzer over fixture packages laid
// out golang.org/x/tools-style under testdata/src/<importpath>/ and
// compares its diagnostics against `// want "regexp"` comments in the
// fixture sources. Multiple quoted regexps on one want comment expect
// multiple diagnostics on that line.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/driver"
	"mmutricks/tools/analyzers/load"
)

// Run loads each fixture package below testdata/src, applies the
// analyzer, and reports mismatches against want comments via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	prog, err := load.Load(load.Config{FakeRoot: testdata + "/src", Tests: true}, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := driver.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectWants(t, prog, f, func(file string, line int, rx *regexp.Regexp) {
				k := key{file, line}
				wants[k] = append(wants[k], rx)
			})
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// collectWants extracts want expectations from one file's comments.
func collectWants(t *testing.T, prog *load.Program, f *ast.File, emit func(file string, line int, rx *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			rest := strings.TrimSpace(text[idx+len("// want "):])
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					t.Fatalf("%s:%d: malformed want comment: %q", pos.Filename, pos.Line, text)
				}
				lit, tail, err := cutQuoted(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				rx, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				emit(pos.Filename, pos.Line, rx)
				rest = strings.TrimSpace(tail)
			}
		}
	}
}

// cutQuoted splits a leading Go string literal (quoted or backquoted)
// off s.
func cutQuoted(s string) (lit, rest string, err error) {
	if s[0] == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			lit, err := strconv.Unquote(s[:i+2])
			return lit, s[i+2:], err
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			lit, err := strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}
