// Package annotation parses the //mmutricks:* directive grammar the
// mmulint analyzers enforce. The grammar (also documented in DESIGN.md):
//
//	//mmutricks:noalloc
//	    On a function or interface-method declaration: the function is
//	    part of a statically-verified allocation-free hot path. The
//	    noalloc analyzer checks its body and requires every static
//	    callee inside the module to carry the same annotation. On an
//	    interface method it is a contract: every module implementation
//	    must be annotated (and is therefore checked).
//
//	//mmutricks:free <reason>
//	    On a function declaration: the function deliberately performs
//	    modeled-memory work without charging the cycle ledger — the
//	    cost is returned to (or already paid by) the caller. Waives the
//	    cyclecost analyzer. The reason is mandatory.
//
//	//mmutricks:nocheck <reason>
//	    On a test or experiment function: the function mutates kernel
//	    translation state but intentionally skips CheckConsistency.
//	    Waives the invariantcheck analyzer. The reason is mandatory.
//
//	//mmutricks:noalloc-ok <reason>  (trailing, same line)
//	    Statement-level waiver inside a noalloc function for a
//	    construct the analyzer would flag (e.g. a cold panic path).
//	    The reason is mandatory.
//
//	//mmutricks:nondet-ok <reason>  (trailing, same line)
//	    Statement-level waiver inside a determinism-zone package for a
//	    construct the determinism analyzer would flag (e.g. a map range
//	    whose results are sorted before rendering, or wall-clock time
//	    that never reaches the report bytes). The reason is mandatory.
//
//	//mmutricks:parity-ok <reason>  (trailing, same line)
//	    Statement-level waiver for the parity analyzer on a counter
//	    increment or trace emit whose partner lives in another function
//	    (the reason must name the remote site). The reason is mandatory.
//
//	//mmutricks:phasebalance-ok <reason>  (trailing, same line)
//	    Statement-level waiver for the phasebalance analyzer on a span
//	    opener used outside the provable shapes (the reason must argue
//	    why the exit still runs exactly once). The reason is mandatory.
//
//	//mmutricks:transitions-ok <reason>  (trailing the func line)
//	    Waiver for the transitions analyzer on an exported kernel
//	    function that mutates context-switch/MM state but is
//	    deliberately absent from the model's action table (the reason
//	    must say how the mutation is otherwise audited). The reason is
//	    mandatory.
//
//	//mmutricks:guarded-by(<mutex>)
//	    On a struct field (or a package-level var sharing a var block
//	    with a mutex): the field may only be read or written while the
//	    named sibling sync.Mutex/sync.RWMutex is held. The guardedby
//	    analyzer proves every access sits on a path where the lock is
//	    provably held.
//
//	//mmutricks:atomic
//	    On a struct field or package-level var: the field is accessed
//	    only through sync/atomic (an atomic.* typed value's methods, or
//	    its address passed to a sync/atomic function). The guardedby
//	    analyzer enforces the discipline instead of requiring a mutex.
//
//	//mmutricks:unsync <reason>
//	    On a struct field in a mutex-bearing struct: the field is
//	    deliberately outside the lock (immutable after construction,
//	    synchronized by a happens-before edge, itself a sync type
//	    wrapper...). The reason is mandatory and is the reviewer's
//	    audit trail; the guardedby analyzer does not check accesses.
//
//	//mmutricks:guardedby-ok <reason>  (trailing, same line)
//	    Statement-level waiver for the guardedby analyzer on an access
//	    to a guarded field outside its lock (e.g. constructor or other
//	    pre-publication access). The reason is mandatory.
//
//	//mmutricks:lockorder-ok <reason>  (trailing, same line)
//	    Statement-level waiver for the lockorder analyzer on a lock
//	    acquisition the pinned order does not cover (the reason must
//	    argue why the ordering cannot deadlock). The reason is
//	    mandatory.
//
// Directives are comment directives in the gofmt sense (no space after
// //) and must appear in the doc comment block of the declaration they
// annotate, except the *-ok waivers which trail the waived line.
package annotation

import (
	"go/ast"
	"go/token"
	"strings"
)

// Set is the parsed annotations of one declaration.
type Set struct {
	Noalloc bool
	// Free is set when //mmutricks:free is present; FreeReason carries
	// its justification (empty = malformed, analyzers reject it).
	Free       bool
	FreeReason string
	// Nocheck/NocheckReason mirror Free for //mmutricks:nocheck.
	Nocheck       bool
	NocheckReason string
	// Malformed collects directives that parsed badly (unknown verb or
	// missing mandatory reason) so analyzers can report them instead of
	// silently honouring or ignoring them.
	Malformed []string
}

const prefix = "//mmutricks:"

// ParseDoc extracts the annotation set from a declaration doc comment.
func ParseDoc(doc *ast.CommentGroup) Set {
	var s Set
	if doc == nil {
		return s
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		verb, rest, _ := strings.Cut(text, " ")
		rest = strings.TrimSpace(rest)
		switch verb {
		case "noalloc":
			if rest != "" {
				s.Malformed = append(s.Malformed, c.Text+" (noalloc takes no argument)")
				continue
			}
			s.Noalloc = true
		case "free":
			if rest == "" {
				s.Malformed = append(s.Malformed, c.Text+" (free requires a reason)")
				continue
			}
			s.Free, s.FreeReason = true, rest
		case "nocheck":
			if rest == "" {
				s.Malformed = append(s.Malformed, c.Text+" (nocheck requires a reason)")
				continue
			}
			s.Nocheck, s.NocheckReason = true, rest
		case "noalloc-ok", "nondet-ok", "parity-ok", "phasebalance-ok", "guardedby-ok", "lockorder-ok":
			s.Malformed = append(s.Malformed, c.Text+" ("+verb+" is a line waiver, not a declaration annotation)")
		case "atomic", "unsync":
			s.Malformed = append(s.Malformed, c.Text+" ("+verb+" is a field annotation, not a declaration annotation)")
		default:
			if strings.HasPrefix(verb, "guarded-by") {
				s.Malformed = append(s.Malformed, c.Text+" (guarded-by is a field annotation, not a declaration annotation)")
				continue
			}
			s.Malformed = append(s.Malformed, c.Text+" (unknown directive)")
		}
	}
	return s
}

// OfFunc returns the annotations on a function declaration.
func OfFunc(decl *ast.FuncDecl) Set {
	if decl == nil {
		return Set{}
	}
	return ParseDoc(decl.Doc)
}

// LineWaivers scans a file for trailing //mmutricks:noalloc-ok comments
// and returns the set of waived line numbers (with their reasons).
// Waivers without a reason are returned in malformed, keyed by line.
func LineWaivers(fset *token.FileSet, f *ast.File) (waived map[int]string, malformed map[int]string) {
	return Waivers(fset, f, "noalloc-ok")
}

// Waivers is the generalized line-waiver scan: it collects trailing
// //mmutricks:<verb> comments (verb is one of the *-ok waiver verbs)
// and returns the waived line numbers with their reasons. Waivers
// without a reason are returned in malformed, keyed by line.
func Waivers(fset *token.FileSet, f *ast.File, verb string) (waived map[int]string, malformed map[int]string) {
	waived = map[int]string{}
	malformed = map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, prefix+verb)
			if !ok {
				continue
			}
			// Reject prefix-overlap matches (verb "noalloc" must not
			// claim a "noalloc-ok" comment).
			if text != "" && text[0] != ' ' && text[0] != '\t' {
				continue
			}
			line := fset.Position(c.Pos()).Line
			reason := strings.TrimSpace(text)
			if reason == "" {
				malformed[line] = c.Text
				continue
			}
			waived[line] = reason
		}
	}
	return waived, malformed
}

// FieldSet is the parsed concurrency annotations of one struct field or
// package-level var. At most one of GuardedBy/Atomic/Unsync should be
// set; the guardedby analyzer rejects conflicting combinations.
type FieldSet struct {
	// GuardedBy names the sibling mutex from //mmutricks:guarded-by(mu);
	// empty when absent.
	GuardedBy string
	// Atomic is set by //mmutricks:atomic.
	Atomic bool
	// Unsync/UnsyncReason mirror Free/FreeReason for //mmutricks:unsync.
	Unsync       bool
	UnsyncReason string
	// Malformed collects directives that parsed badly, as in Set.
	Malformed []string
}

// Count returns how many of the three field disciplines are declared —
// the coverage rule requires exactly one.
func (s FieldSet) Count() int {
	n := 0
	if s.GuardedBy != "" {
		n++
	}
	if s.Atomic {
		n++
	}
	if s.Unsync {
		n++
	}
	return n
}

// OfField returns the concurrency annotations of a struct field or
// ValueSpec, reading both the doc comment above it and the trailing
// comment on its line.
func OfField(doc, comment *ast.CommentGroup) FieldSet {
	var s FieldSet
	parseFieldGroup(doc, &s)
	parseFieldGroup(comment, &s)
	return s
}

func parseFieldGroup(cg *ast.CommentGroup, s *FieldSet) {
	if cg == nil {
		return
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		verb, rest, _ := strings.Cut(text, " ")
		rest = strings.TrimSpace(rest)
		switch {
		case verb == "atomic":
			if rest != "" {
				s.Malformed = append(s.Malformed, c.Text+" (atomic takes no argument)")
				continue
			}
			s.Atomic = true
		case verb == "unsync":
			if rest == "" {
				s.Malformed = append(s.Malformed, c.Text+" (unsync requires a reason)")
				continue
			}
			s.Unsync, s.UnsyncReason = true, rest
		case strings.HasPrefix(verb, "guarded-by"):
			arg, ok := strings.CutPrefix(verb, "guarded-by(")
			arg, ok2 := strings.CutSuffix(arg, ")")
			if !ok || !ok2 || arg == "" || rest != "" {
				s.Malformed = append(s.Malformed, c.Text+" (guarded-by requires a parenthesized mutex name and nothing else)")
				continue
			}
			s.GuardedBy = arg
		default:
			s.Malformed = append(s.Malformed, c.Text+" (not a field annotation)")
		}
	}
}

// Pos of the first directive, for malformed-directive diagnostics.
func DocDirectivePos(doc *ast.CommentGroup) token.Pos {
	if doc == nil {
		return token.NoPos
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, prefix) {
			return c.Pos()
		}
	}
	return doc.Pos()
}
