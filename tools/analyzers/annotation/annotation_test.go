package annotation

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseFuncDoc(t *testing.T, doc string) Set {
	t.Helper()
	src := "package p\n\n" + doc + "\nfunc f() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return OfFunc(f.Decls[0].(*ast.FuncDecl))
}

func TestParseDoc(t *testing.T) {
	cases := []struct {
		doc  string
		want Set
	}{
		{"//mmutricks:noalloc", Set{Noalloc: true}},
		{"// Lookup is hot.\n//\n//mmutricks:noalloc", Set{Noalloc: true}},
		{"//mmutricks:free cost returned to caller", Set{Free: true, FreeReason: "cost returned to caller"}},
		{"//mmutricks:nocheck panics mid-flush", Set{Nocheck: true, NocheckReason: "panics mid-flush"}},
		// Malformed forms: honored as nothing, reported as malformed.
		{"//mmutricks:noalloc extra", Set{Malformed: []string{"//mmutricks:noalloc extra (noalloc takes no argument)"}}},
		{"//mmutricks:free", Set{Malformed: []string{"//mmutricks:free (free requires a reason)"}}},
		{"//mmutricks:nocheck", Set{Malformed: []string{"//mmutricks:nocheck (nocheck requires a reason)"}}},
		// Stacked directives in one doc block all take effect.
		{"//mmutricks:noalloc\n//mmutricks:free cost charged by caller", Set{Noalloc: true, Free: true, FreeReason: "cost charged by caller"}},
		// Line waivers on the wrong declaration kind (a doc comment) are
		// malformed, never honoured.
		{"//mmutricks:noalloc-ok cold path", Set{Malformed: []string{"//mmutricks:noalloc-ok cold path (noalloc-ok is a line waiver, not a declaration annotation)"}}},
		{"//mmutricks:nondet-ok sorted later", Set{Malformed: []string{"//mmutricks:nondet-ok sorted later (nondet-ok is a line waiver, not a declaration annotation)"}}},
		{"//mmutricks:parity-ok remote emit", Set{Malformed: []string{"//mmutricks:parity-ok remote emit (parity-ok is a line waiver, not a declaration annotation)"}}},
		{"//mmutricks:frobnicate", Set{Malformed: []string{"//mmutricks:frobnicate (unknown directive)"}}},
		{"//mmutricks:guardedby-ok constructor", Set{Malformed: []string{"//mmutricks:guardedby-ok constructor (guardedby-ok is a line waiver, not a declaration annotation)"}}},
		{"//mmutricks:lockorder-ok never nests", Set{Malformed: []string{"//mmutricks:lockorder-ok never nests (lockorder-ok is a line waiver, not a declaration annotation)"}}},
		// Field verbs on a function declaration are malformed, never honoured.
		{"//mmutricks:guarded-by(mu)", Set{Malformed: []string{"//mmutricks:guarded-by(mu) (guarded-by is a field annotation, not a declaration annotation)"}}},
		{"//mmutricks:atomic", Set{Malformed: []string{"//mmutricks:atomic (atomic is a field annotation, not a declaration annotation)"}}},
		{"//mmutricks:unsync immutable", Set{Malformed: []string{"//mmutricks:unsync immutable (unsync is a field annotation, not a declaration annotation)"}}},
		// Non-directive comments are ignored.
		{"// mmutricks:noalloc has a space, so it is prose", Set{}},
	}
	for _, tc := range cases {
		got := parseFuncDoc(t, tc.doc)
		if got.Noalloc != tc.want.Noalloc || got.Free != tc.want.Free ||
			got.FreeReason != tc.want.FreeReason || got.Nocheck != tc.want.Nocheck ||
			got.NocheckReason != tc.want.NocheckReason || len(got.Malformed) != len(tc.want.Malformed) {
			t.Errorf("ParseDoc(%q) = %+v, want %+v", tc.doc, got, tc.want)
			continue
		}
		for i := range got.Malformed {
			if got.Malformed[i] != tc.want.Malformed[i] {
				t.Errorf("ParseDoc(%q) malformed[%d] = %q, want %q", tc.doc, i, got.Malformed[i], tc.want.Malformed[i])
			}
		}
	}
}

func TestLineWaivers(t *testing.T) {
	src := `package p

func f() *int {
	x := new(int) //mmutricks:noalloc-ok boot-time only
	y := new(int) //mmutricks:noalloc-ok
	_ = y
	return x
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	waived, malformed := LineWaivers(fset, f)
	if got := waived[4]; got != "boot-time only" {
		t.Errorf("waived[4] = %q, want %q", got, "boot-time only")
	}
	if len(waived) != 1 {
		t.Errorf("waived = %v, want exactly line 4", waived)
	}
	if _, ok := malformed[5]; !ok || len(malformed) != 1 {
		t.Errorf("malformed = %v, want exactly line 5 (reasonless waiver)", malformed)
	}
}

func TestWaiverVerbsAndPlacement(t *testing.T) {
	src := `package p

func f() {
	g() //mmutricks:nondet-ok sorted downstream
	g() //mmutricks:parity-ok remote increment lives in h
	//mmutricks:nondet-ok floating waiver
	g()
	g() //mmutricks:nondet-ok
	g() //mmutricks:noalloc-ok cold path
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	// Each verb sees only its own waivers.
	nondet, nondetBad := Waivers(fset, f, "nondet-ok")
	if got := nondet[4]; got != "sorted downstream" {
		t.Errorf("nondet waived[4] = %q, want %q", got, "sorted downstream")
	}
	// A waiver on its own line registers to that line, not the
	// statement below it: placement is trailing, same line.
	if got := nondet[6]; got != "floating waiver" {
		t.Errorf("nondet waived[6] = %q, want %q (waivers bind to their own line)", got, "floating waiver")
	}
	if _, ok := nondet[7]; ok {
		t.Errorf("nondet waived[7] present; a floating waiver must not cover the next line")
	}
	if len(nondet) != 2 {
		t.Errorf("nondet waived = %v, want exactly lines 4 and 6", nondet)
	}
	if _, ok := nondetBad[8]; !ok || len(nondetBad) != 1 {
		t.Errorf("nondet malformed = %v, want exactly line 8 (reasonless waiver)", nondetBad)
	}

	parity, parityBad := Waivers(fset, f, "parity-ok")
	if got := parity[5]; got != "remote increment lives in h" || len(parity) != 1 || len(parityBad) != 0 {
		t.Errorf("parity waived = %v malformed = %v, want exactly line 5", parity, parityBad)
	}

	// Prefix overlap: scanning for "noalloc" must not claim the
	// "noalloc-ok" waiver on line 9.
	overlap, overlapBad := Waivers(fset, f, "noalloc")
	if len(overlap) != 0 || len(overlapBad) != 0 {
		t.Errorf("Waivers(noalloc) = %v %v, want empty (noalloc-ok is a different verb)", overlap, overlapBad)
	}
	noallocOK, _ := Waivers(fset, f, "noalloc-ok")
	if got := noallocOK[9]; got != "cold path" || len(noallocOK) != 1 {
		t.Errorf("noalloc-ok waived = %v, want exactly line 9", noallocOK)
	}
}

// TestConcurrencyWaiverVerbs exercises the PR 10 waiver verbs through
// the same generalized scan: stacked directives on adjacent lines,
// per-verb isolation, reasonless rejection, and prefix-overlap (the
// field verb "guarded-by(...)" must never be claimed by a scan for the
// "guardedby-ok" waiver or vice versa).
func TestConcurrencyWaiverVerbs(t *testing.T) {
	src := `package p

func f() {
	g() //mmutricks:guardedby-ok constructor, not yet published
	g() //mmutricks:lockorder-ok replay path, single-threaded
	g() //mmutricks:guardedby-ok
	g() //mmutricks:lockorder-ok
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	gb, gbBad := Waivers(fset, f, "guardedby-ok")
	if got := gb[4]; got != "constructor, not yet published" || len(gb) != 1 {
		t.Errorf("guardedby-ok waived = %v, want exactly line 4", gb)
	}
	if _, ok := gbBad[6]; !ok || len(gbBad) != 1 {
		t.Errorf("guardedby-ok malformed = %v, want exactly line 6 (reasonless)", gbBad)
	}

	lo, loBad := Waivers(fset, f, "lockorder-ok")
	if got := lo[5]; got != "replay path, single-threaded" || len(lo) != 1 {
		t.Errorf("lockorder-ok waived = %v, want exactly line 5", lo)
	}
	if _, ok := loBad[7]; !ok || len(loBad) != 1 {
		t.Errorf("lockorder-ok malformed = %v, want exactly line 7 (reasonless)", loBad)
	}

	// Prefix overlap against the field verb: a file carrying
	// //mmutricks:guarded-by(mu) trailing a field must not register as
	// a guardedby-ok (or any other) line waiver.
	fieldSrc := `package p

type t struct {
	mu int
	n  int //mmutricks:guarded-by(mu)
}
`
	ff, err := parser.ParseFile(fset, "q.go", fieldSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, verb := range []string{"guardedby-ok", "guarded-by", "guarded-by(mu)"} {
		w, bad := Waivers(fset, ff, verb)
		if len(w) != 0 && verb != "guarded-by(mu)" {
			t.Errorf("Waivers(%q) claimed the field annotation: %v", verb, w)
		}
		_ = bad
	}
}

// TestOfField exercises the field-annotation grammar on struct fields:
// doc vs trailing placement, each verb's argument rules, and stacking.
func TestOfField(t *testing.T) {
	src := `package p

import "sync"

type t struct {
	mu sync.Mutex
	a  int //mmutricks:guarded-by(mu)
	// b is documented.
	//mmutricks:guarded-by(mu)
	b int
	c int //mmutricks:atomic
	d int //mmutricks:unsync immutable after construction
	e int //mmutricks:guarded-by
	f int //mmutricks:guarded-by()
	g int //mmutricks:guarded-by(mu) trailing junk
	h int //mmutricks:atomic extra
	i int //mmutricks:unsync
	j int //mmutricks:noalloc
	k int //mmutricks:guarded-by(mu)
	//mmutricks:atomic
	l int
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	st := f.Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	byName := map[string]FieldSet{}
	for _, fld := range st.Fields.List {
		byName[fld.Names[0].Name] = OfField(fld.Doc, fld.Comment)
	}

	if got := byName["a"]; got.GuardedBy != "mu" || len(got.Malformed) != 0 {
		t.Errorf("a = %+v, want GuardedBy mu", got)
	}
	if got := byName["b"]; got.GuardedBy != "mu" || len(got.Malformed) != 0 {
		t.Errorf("b (doc placement) = %+v, want GuardedBy mu", got)
	}
	if got := byName["c"]; !got.Atomic || got.Count() != 1 {
		t.Errorf("c = %+v, want Atomic", got)
	}
	if got := byName["d"]; !got.Unsync || got.UnsyncReason != "immutable after construction" {
		t.Errorf("d = %+v, want Unsync with reason", got)
	}
	for _, name := range []string{"e", "f", "g", "h", "i", "j"} {
		if got := byName[name]; len(got.Malformed) != 1 || got.Count() != 0 {
			t.Errorf("%s = %+v, want exactly one malformed directive and no discipline", name, got)
		}
	}
	if got := byName["l"]; !got.Atomic {
		t.Errorf("l (doc placement) = %+v, want Atomic", got)
	}
	if got := byName["k"]; got.Count() != 1 {
		t.Errorf("k = %+v, want one discipline", got)
	}
}
