package annotation

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseFuncDoc(t *testing.T, doc string) Set {
	t.Helper()
	src := "package p\n\n" + doc + "\nfunc f() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return OfFunc(f.Decls[0].(*ast.FuncDecl))
}

func TestParseDoc(t *testing.T) {
	cases := []struct {
		doc  string
		want Set
	}{
		{"//mmutricks:noalloc", Set{Noalloc: true}},
		{"// Lookup is hot.\n//\n//mmutricks:noalloc", Set{Noalloc: true}},
		{"//mmutricks:free cost returned to caller", Set{Free: true, FreeReason: "cost returned to caller"}},
		{"//mmutricks:nocheck panics mid-flush", Set{Nocheck: true, NocheckReason: "panics mid-flush"}},
		// Malformed forms: honored as nothing, reported as malformed.
		{"//mmutricks:noalloc extra", Set{Malformed: []string{"//mmutricks:noalloc extra (noalloc takes no argument)"}}},
		{"//mmutricks:free", Set{Malformed: []string{"//mmutricks:free (free requires a reason)"}}},
		{"//mmutricks:nocheck", Set{Malformed: []string{"//mmutricks:nocheck (nocheck requires a reason)"}}},
		{"//mmutricks:noalloc-ok cold path", Set{Malformed: []string{"//mmutricks:noalloc-ok cold path (noalloc-ok is a line waiver, not a declaration annotation)"}}},
		{"//mmutricks:frobnicate", Set{Malformed: []string{"//mmutricks:frobnicate (unknown directive)"}}},
		// Non-directive comments are ignored.
		{"// mmutricks:noalloc has a space, so it is prose", Set{}},
	}
	for _, tc := range cases {
		got := parseFuncDoc(t, tc.doc)
		if got.Noalloc != tc.want.Noalloc || got.Free != tc.want.Free ||
			got.FreeReason != tc.want.FreeReason || got.Nocheck != tc.want.Nocheck ||
			got.NocheckReason != tc.want.NocheckReason || len(got.Malformed) != len(tc.want.Malformed) {
			t.Errorf("ParseDoc(%q) = %+v, want %+v", tc.doc, got, tc.want)
			continue
		}
		for i := range got.Malformed {
			if got.Malformed[i] != tc.want.Malformed[i] {
				t.Errorf("ParseDoc(%q) malformed[%d] = %q, want %q", tc.doc, i, got.Malformed[i], tc.want.Malformed[i])
			}
		}
	}
}

func TestLineWaivers(t *testing.T) {
	src := `package p

func f() *int {
	x := new(int) //mmutricks:noalloc-ok boot-time only
	y := new(int) //mmutricks:noalloc-ok
	_ = y
	return x
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	waived, malformed := LineWaivers(fset, f)
	if got := waived[4]; got != "boot-time only" {
		t.Errorf("waived[4] = %q, want %q", got, "boot-time only")
	}
	if len(waived) != 1 {
		t.Errorf("waived = %v, want exactly line 4", waived)
	}
	if _, ok := malformed[5]; !ok || len(malformed) != 1 {
		t.Errorf("malformed = %v, want exactly line 5 (reasonless waiver)", malformed)
	}
}
