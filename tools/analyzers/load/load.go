// Package load turns package patterns into parsed, type-checked
// packages for the mmulint analyzers. It is the offline stand-in for
// golang.org/x/tools/go/packages: module-internal imports are resolved
// by walking the module tree and type-checking from source, and
// standard-library imports fall back to the compiler's source importer
// (go/importer "source"), so the whole pipeline works with no module
// cache and no network.
//
// Scope is deliberately narrow: one module, no cgo, no vendoring, the
// default build context. That is exactly this repository.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls a Load.
type Config struct {
	// Dir is a directory inside the module to load (defaults to ".").
	Dir string
	// Tests includes *_test.go files in requested packages (in-package
	// test files are merged; external _test packages are returned as
	// separate packages with an "_test" path suffix).
	Tests bool
	// FakeRoot, when set, resolves every non-stdlib import path as a
	// subdirectory of this root instead of using module resolution —
	// the analysistest fixture layout (testdata/src/<path>).
	FakeRoot string
}

// Package is one loaded package.
type Package struct {
	// PkgPath is the import path ("mmutricks/internal/ppc"), with an
	// "_test" suffix for external test packages.
	PkgPath string
	// Dir is the directory the files live in.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the result of one Load: the requested packages plus the
// module-wide syntax index accumulated while type-checking them.
type Program struct {
	Fset *token.FileSet
	// Packages are the requested packages in deterministic order.
	Packages []*Package

	funcDecls map[*types.Func]*ast.FuncDecl
	funcSrcs  map[*types.Func]funcSource
	ifaceDocs map[*types.Func]*ast.CommentGroup
}

// funcSource locates one function declaration in its file and package.
type funcSource struct {
	file *ast.File
	info *types.Info
}

// FuncDecl implements analysis.ModuleIndex.
func (p *Program) FuncDecl(fn *types.Func) *ast.FuncDecl { return p.funcDecls[fn] }

// FuncSource implements analysis.ModuleIndex: the declaration of fn
// plus the enclosing file and the package type info, for cross-package
// body checks.
func (p *Program) FuncSource(fn *types.Func) (*ast.FuncDecl, *ast.File, *types.Info) {
	decl := p.funcDecls[fn]
	if decl == nil {
		return nil, nil, nil
	}
	src := p.funcSrcs[fn]
	return decl, src.file, src.info
}

// InterfaceMethodDoc implements analysis.ModuleIndex.
func (p *Program) InterfaceMethodDoc(fn *types.Func) *ast.CommentGroup { return p.ifaceDocs[fn] }

// InterfaceMethods implements analysis.ModuleIndex.
func (p *Program) InterfaceMethods() map[*types.Func]*ast.CommentGroup { return p.ifaceDocs }

// loader carries the shared state of one Load.
type loader struct {
	cfg        Config
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.ImporterFrom
	// pkgs caches loaded packages by cache key (path + tests variant).
	pkgs map[string]*Package
	// loading marks in-flight loads for cycle detection.
	loading map[string]bool
}

// Load resolves patterns ("./...", a directory, or an import path) and
// returns the requested packages, type-checked.
func Load(cfg Config, patterns ...string) (*Program, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	std := importer.ForCompiler(l.fset, "source", nil)
	fromStd, ok := std.(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("load: source importer does not support ImporterFrom")
	}
	l.std = fromStd

	if cfg.FakeRoot == "" {
		root, path, err := findModule(cfg.Dir)
		if err != nil {
			return nil, err
		}
		l.moduleRoot, l.modulePath = root, path
	}

	var paths []string
	for _, pat := range patterns {
		ps, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		paths = append(paths, ps...)
	}
	sort.Strings(paths)
	paths = dedup(paths)

	prog := &Program{
		Fset:      l.fset,
		funcDecls: map[*types.Func]*ast.FuncDecl{},
		funcSrcs:  map[*types.Func]funcSource{},
		ifaceDocs: map[*types.Func]*ast.CommentGroup{},
	}
	for _, path := range paths {
		pkg, xtest, err := l.loadRequested(path)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		if xtest != nil {
			prog.Packages = append(prog.Packages, xtest)
		}
	}
	for _, pkg := range l.pkgs {
		indexPackage(prog, pkg)
	}
	return prog, nil
}

// findModule locates the enclosing go.mod and reads the module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}

// expand turns one pattern into a list of import paths.
func (l *loader) expand(pat string) ([]string, error) {
	if l.cfg.FakeRoot != "" {
		// Fixture mode: patterns are fixture import paths, verbatim.
		return []string{pat}, nil
	}
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	var base string
	switch {
	case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, ".."):
		abs, err := filepath.Abs(filepath.Join(l.cfg.Dir, pat))
		if err != nil {
			return nil, err
		}
		base = abs
	case pat == l.modulePath || strings.HasPrefix(pat, l.modulePath+"/"):
		base = filepath.Join(l.moduleRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.modulePath), "/"))
	default:
		return nil, fmt.Errorf("load: pattern %q is outside module %s", pat, l.modulePath)
	}
	if !recursive {
		path, err := l.dirImportPath(base)
		if err != nil {
			return nil, err
		}
		return []string{path}, nil
	}
	var out []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			path, err := l.dirImportPath(p)
			if err != nil {
				return err
			}
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func (l *loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module root %s", dir, l.moduleRoot)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func dedup(paths []string) []string {
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// dirFor maps an import path to its directory.
func (l *loader) dirFor(path string) (string, bool) {
	if l.cfg.FakeRoot != "" {
		dir := filepath.Join(l.cfg.FakeRoot, filepath.FromSlash(path))
		return dir, hasGoFiles(dir)
	}
	if path == l.modulePath {
		return l.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
		return dir, hasGoFiles(dir)
	}
	return "", false
}

// loadRequested loads one requested package (with tests if configured)
// and, when external test files exist, the companion _test package.
func (l *loader) loadRequested(path string) (pkg, xtest *Package, err error) {
	pkg, err = l.load(path, l.cfg.Tests)
	if err != nil {
		return nil, nil, err
	}
	if !l.cfg.Tests {
		return pkg, nil, nil
	}
	dir, _ := l.dirFor(path)
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if len(bp.XTestGoFiles) == 0 {
		return pkg, nil, nil
	}
	xtest, err = l.check(path+"_test", dir, bp.XTestGoFiles, &selfImporter{l: l, selfPath: path, self: pkg})
	if err != nil {
		return nil, nil, err
	}
	l.pkgs["x:"+path] = xtest
	return pkg, xtest, nil
}

// load loads one package variant, cached.
func (l *loader) load(path string, tests bool) (*Package, error) {
	key := path
	if tests {
		key = "t:" + path
	}
	if p, ok := l.pkgs[key]; ok {
		return p, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[key] = true
	defer func() { l.loading[key] = false }()

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: cannot resolve %q to a directory", path)
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	files := append([]string(nil), bp.GoFiles...)
	if tests {
		files = append(files, bp.TestGoFiles...)
	}
	pkg, err := l.check(path, dir, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[key] = pkg
	return pkg, nil
}

// check parses and type-checks one file set as a package.
func (l *loader) check(path, dir string, fileNames []string, imp types.ImporterFrom) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Import / ImportFrom make the loader a types.Importer for dependency
// resolution: module-internal paths load from source (without test
// files); everything else goes to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// selfImporter resolves the base package of an external test package to
// its test-augmented variant (matching the go tool, where foo_test sees
// foo compiled together with foo's in-package test files).
type selfImporter struct {
	l        *loader
	selfPath string
	self     *Package
}

func (s *selfImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, "", 0)
}

func (s *selfImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == s.selfPath {
		return s.self.Types, nil
	}
	return s.l.ImportFrom(path, srcDir, mode)
}

// indexPackage records every function declaration and annotated
// interface method of pkg into the program-wide index.
func indexPackage(prog *Program, pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
					prog.funcDecls[fn] = n
					prog.funcSrcs[fn] = funcSource{file: f, info: pkg.Info}
				}
			case *ast.InterfaceType:
				for _, field := range n.Methods.List {
					for _, name := range field.Names {
						if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
							prog.ifaceDocs[fn] = field.Doc
						}
					}
				}
			}
			return true
		})
	}
}
