// Package registry checks experiment-registration hygiene in the
// report package, where the parallel harness's determinism guarantees
// are rooted:
//
//   - register(...) must be called from an init function (so every
//     section registers exactly once, unconditionally);
//   - the argument must be an Experiment composite literal whose ID is
//     a string literal (statically auditable), unique across the
//     package;
//   - the closure passed to RowSet must only write captured variables
//     through index expressions (res[i] = ...): rows execute on
//     whatever harness tokens are idle, so an append or scalar write
//     to shared state is order-dependent and breaks the byte-identical
//     -j guarantee.
//
// _test.go files are exempt: negative tests of the registration
// machinery violate these rules on purpose.
package registry

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mmutricks/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "registry",
	Doc:  "check experiment registration hygiene and RowSet closure index-stability",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "report" {
		return nil
	}
	seen := map[string]token.Pos{}
	for _, file := range pass.Files {
		// Test files probing the registration machinery (e.g. asserting
		// that a duplicate register panics) are exempt: the hygiene rules
		// bind the production registration surface.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch calleeName(pass, call) {
				case "register":
					checkRegister(pass, call, inInit, seen)
				case "RowSet":
					checkRowSet(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

// calleeName resolves a call to a package-level function name in the
// report package ("" otherwise).
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Name() == "report" {
			return fn.Name()
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Name() == "report" {
			return fn.Name()
		}
	}
	return ""
}

func checkRegister(pass *analysis.Pass, call *ast.CallExpr, inInit bool, seen map[string]token.Pos) {
	if !inInit {
		pass.Reportf(call.Pos(), "register must be called from init so every section registers exactly once")
	}
	if len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "register argument must be an Experiment literal so its ID is statically auditable")
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "ID" {
			continue
		}
		basic, ok := ast.Unparen(kv.Value).(*ast.BasicLit)
		if !ok || basic.Kind != token.STRING {
			pass.Reportf(kv.Value.Pos(), "experiment ID must be a string literal, not a computed value")
			return
		}
		id := basic.Value
		if prev, dup := seen[id]; dup {
			pass.Reportf(kv.Value.Pos(), "duplicate experiment ID %s (previously registered at %s)", id, pass.Fset.Position(prev))
			return
		}
		seen[id] = kv.Value.Pos()
		return
	}
	pass.Reportf(lit.Pos(), "Experiment literal has no ID field")
}

// checkRowSet enforces index-stable writes inside the RowSet closure.
// The closure is RowSet's final argument (after the context and row
// count); taking the last argument also keeps the analyzer working on
// fixture packages that mirror the pre-context two-argument shape.
func checkRowSet(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	fn, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return // a named function gets no captured-variable scrutiny here
	}
	checkWrite := func(lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		// Captured: declared outside the closure.
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() {
			return
		}
		if !writesThroughIndex(lhs) {
			pass.Reportf(lhs.Pos(), "RowSet closure writes captured variable %s without indexing; rows run concurrently, so non-indexed writes are order-dependent", root.Name)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		}
		return true
	})
}

// writesThroughIndex reports whether the write path goes through an
// index expression (res[i] = ..., tab.Rows[i].Cells[j] = ...).
func writesThroughIndex(lhs ast.Expr) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
