package registry_test

import (
	"testing"

	"mmutricks/tools/analyzers/analysistest"
	"mmutricks/tools/analyzers/registry"
)

func TestRegistry(t *testing.T) {
	analysistest.Run(t, "testdata", registry.Analyzer, "report", "reportclean")
}
