// Package report (clean fixture): disciplined registrations that must
// produce no diagnostics.
package report

// Experiment mirrors the report package's registration record.
type Experiment struct {
	ID  string
	Run func() error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// RowSet mirrors the harness's row runner.
func RowSet(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func init() {
	register(Experiment{ID: "sec5.flush", Run: run5})
	register(Experiment{ID: "sec6.swap", Run: run6})
}

func run5() error {
	res := make([]float64, 4)
	RowSet(4, func(i int) {
		j := i * 2 // ok: closure-local writes are fine
		res[i] = float64(j)
	})
	return nil
}

func run6() error { return nil }
