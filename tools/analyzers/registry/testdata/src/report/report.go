// Package report is the flagged fixture for registration hygiene.
package report

// Experiment mirrors the report package's registration record.
type Experiment struct {
	ID  string
	Run func() error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// RowSet mirrors the harness's token-borrowing row runner: fn(i) may
// execute on any idle token, in any order.
func RowSet(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

var suffix = "7.x"

func init() {
	register(Experiment{ID: "sec5.good", Run: runGood})
	register(Experiment{ID: "sec5.good", Run: runGood}) // want `duplicate experiment ID`
	register(Experiment{Run: runGood})                  // want `Experiment literal has no ID field`
	register(Experiment{ID: "sec" + suffix})            // want `experiment ID must be a string literal`
	register(makeExperiment())                          // want `register argument must be an Experiment literal`
}

func makeExperiment() Experiment { return Experiment{} }

// lateRegister registers outside init: conditional or repeated
// registration breaks the exactly-once guarantee.
func lateRegister() {
	register(Experiment{ID: "sec9.late", Run: runGood}) // want `register must be called from init`
}

var _ = lateRegister

func runGood() error {
	res := make([]int, 8)
	var total int
	RowSet(8, func(i int) {
		res[i] = i * i // ok: indexed write into a captured slice
	})
	RowSet(8, func(i int) {
		total += res[i] // want `RowSet closure writes captured variable total without indexing`
	})
	_ = total
	return nil
}
