package report

import "testing"

// Test files are exempt: negative tests of the registration machinery
// register duplicates outside init on purpose.
func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(Experiment{ID: "sec5.good"})
}
