// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API, carrying exactly the surface the
// mmulint analyzers need. The container this repo builds in has no
// network and no module cache, so x/tools cannot be vendored; the types
// here mirror its shapes (Analyzer, Pass, Diagnostic) closely enough
// that the analyzers could be ported to the real framework by swapping
// the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is the one-paragraph description shown by `mmulint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass holds everything an analyzer may inspect about one package, plus
// the module-wide indexes the drivers precompute.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Module is the module-wide function index: it resolves a
	// types.Func (from any package type-checked this run, not just the
	// one under analysis) to its declaration so analyzers can read
	// annotations and bodies across package boundaries.
	Module ModuleIndex

	// report receives diagnostics.
	report func(Diagnostic)
}

// ModuleIndex resolves function objects to syntax across every module
// package loaded in this run.
type ModuleIndex interface {
	// FuncDecl returns the declaration of fn, or nil when fn was not
	// declared in a loaded module package (stdlib, interface methods).
	FuncDecl(fn *types.Func) *ast.FuncDecl
	// FuncSource returns the declaration of fn together with the file
	// that contains it and the type info of its package, so analyzers
	// can body-check functions across package boundaries (the file
	// carries the line waivers, the info the types). All three are nil
	// when fn was not declared in a loaded module package.
	FuncSource(fn *types.Func) (*ast.FuncDecl, *ast.File, *types.Info)
	// InterfaceMethodDoc returns the doc comment group of fn when fn is
	// an interface method declared in a loaded module package.
	InterfaceMethodDoc(fn *types.Func) *ast.CommentGroup
	// InterfaceMethods enumerates every interface method declared in
	// the loaded module packages with its doc comment.
	InterfaceMethods() map[*types.Func]*ast.CommentGroup
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// NewPass builds a Pass; drivers (mmulint, analysistest) use it.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, mod ModuleIndex, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Module: mod, report: report}
}
