// oscompare regenerates Table 3 interactively: the optimized Linux/PPC
// kernel against the unoptimized port, AIX, and the Mach-based systems,
// all on the same simulated 133 MHz 604.
package main

import (
	"fmt"

	"mmutricks/internal/oscompare"
)

func main() {
	fmt.Println("LmBench on a 133 MHz 604 under five OS personalities (paper Table 3)")
	fmt.Println()
	fmt.Printf("%-24s %14s %12s %11s %10s\n", "OS", "null syscall", "ctx switch", "pipe lat.", "pipe bw")
	for _, row := range oscompare.RunTable3(60) {
		fmt.Printf("%-24s %11.1f us %9.1f us %8.1f us %7.1f MB/s\n",
			row.Name, row.NullUS, row.CtxUS, row.PipeUS, row.PipeMBps)
	}
	fmt.Println()
	fmt.Println("paper's numbers:    Linux 2/6/28/52 | unopt 18/28/78/36 | Rhapsody 15/64/161/9")
	fmt.Println("                    MkLinux 19/64/235/15 | AIX 11/24/89/21")
	fmt.Println()
	fmt.Println("The Mach rows are the paper's closing point: every pipe operation pays")
	fmt.Println("an IPC round trip to the UNIX server, so \"micro-kernel designs will")
	fmt.Println("have to travel\" a long way to catch a tuned monolithic kernel.")
}
