// Quickstart: build a simulated PowerPC machine, boot the kernel on it,
// run a small program, and read the performance monitor — the five-
// minute tour of the library.
package main

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func main() {
	// A 185 MHz PowerPC 604 with 32 MB of RAM, running the fully
	// optimized kernel from the paper. Swap in kernel.Unoptimized()
	// (or flip individual Config fields) to see each optimization's
	// effect.
	m := machine.New(clock.PPC604At185())
	k := kernel.New(m, kernel.Optimized())

	// Load a program image (48 KB of text) and start a process.
	img := k.LoadImage("hello", 12)
	task := k.Spawn(img)
	k.Switch(task)

	// Run it: execute instructions, touch heap memory, make syscalls.
	// Every instruction fetch and data access goes through the BATs,
	// segment registers, TLB, hash table and caches of the simulated
	// MMU; page faults demand-zero the heap.
	k.UserRun(0, 20000)
	k.UserTouch(kernel.UserDataBase, 64*1024)
	for i := 0; i < 100; i++ {
		k.SysNull()
	}

	// mmap a megabyte, touch it, unmap it. With the optimized kernel
	// the munmap is a cheap context flush; with FlushRangeCutoff: 0 it
	// would search the hash table for all 256 pages.
	addr := k.SysMmap(256)
	k.UserTouch(addr, 256*arch.PageSize)
	k.SysMunmap(addr, 256)

	fmt.Printf("simulated time: %.3f ms at %d MHz (%d cycles)\n\n",
		1000*m.Led.Seconds(m.Led.Now()), m.Model.MHz, m.Led.Now())
	fmt.Println("performance monitor:")
	fmt.Print(m.Mon.String())
	fmt.Printf("\nD-cache miss rate: %.2f%%   I-cache miss rate: %.2f%%\n",
		100*m.DCache.Stats().MissRate(), 100*m.ICache.Stats().MissRate())
	fmt.Printf("hash-table occupancy: %d / %d PTEs\n",
		m.MMU.HTAB.Occupancy(), m.MMU.HTAB.Capacity())
}
