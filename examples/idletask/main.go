// idletask demonstrates the paper's title optimizations: what the idle
// task can usefully do with the MMU while the machine waits for I/O —
// reclaim zombie hash-table PTEs (§7) and pre-clear free pages without
// touching the cache (§9).
package main

import (
	"fmt"

	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func main() {
	zombieReclaim()
	fmt.Println()
	pageClearing()
}

// zombieReclaim shows lazy flushing littering the hash table with
// zombie PTEs and the idle task sweeping them out.
func zombieReclaim() {
	cfg := kernel.Optimized()
	cfg.UseHTAB = true
	k := kernel.New(machine.New(clock.PPC604At185()), cfg)
	img := k.LoadImage("churn", 8)
	t := k.Spawn(img)
	k.Switch(t)

	fmt.Println("== idle-task zombie reclaim (§7) ==")
	for round := 0; round < 6; round++ {
		k.UserTouchPages(kernel.UserDataBase, 200)
		k.Exec(img) // lazy context flush: 200+ PTEs become zombies
		occ := k.M.MMU.HTAB.Occupancy()
		live := k.M.MMU.HTAB.LiveOccupancy(k.ZombieVSID)
		fmt.Printf("after exec %d: %5d valid PTEs, %4d live, %4d zombies\n",
			round+1, occ, live, occ-live)
	}
	st := k.RunIdleFor(3_000_000) // a long I/O wait
	occ := k.M.MMU.HTAB.Occupancy()
	fmt.Printf("idle task ran: %d zombies reclaimed; %d valid PTEs remain (all live: %v)\n",
		st.Reclaimed, occ, occ == k.M.MMU.HTAB.LiveOccupancy(k.ZombieVSID))
}

// pageClearing contrasts cached and uncached idle-task page clearing:
// the cached variant fills the data cache with useless lines, the
// uncached variant leaves it alone, and both bank pages that make
// get_free_page's fast path free.
func pageClearing() {
	fmt.Println("== idle-task page clearing (§9) ==")
	for _, mode := range []kernel.IdleClearMode{
		kernel.IdleClearCached, kernel.IdleClearUncachedList,
	} {
		cfg := kernel.Optimized()
		cfg.IdleClear = mode
		k := kernel.New(machine.New(clock.PPC604At185()), cfg)
		img := k.LoadImage("app", 8)
		t := k.Spawn(img)
		k.Switch(t)

		// The app builds up a hot cache-resident working set...
		k.UserTouch(kernel.UserDataBase, 24*1024)
		hotBefore := nonIdleLines(k)

		// ...then the machine goes idle and the idle task clears pages.
		st := k.RunIdleFor(400_000)

		hotAfter := nonIdleLines(k)
		idleLines := k.M.DCache.Residency()[cache.ClassIdle]
		fmt.Printf("%-16s cleared %3d pages; app's hot cache lines %4d -> %4d; idle-owned lines now %4d\n",
			mode, st.Cleared, hotBefore, hotAfter, idleLines)

		// get_free_page now has pre-cleared pages banked either way.
		before := k.M.Mon.Snapshot()
		k.UserTouch(kernel.UserDataBase+0x100000, 4096) // demand-zero fault
		d := k.M.Mon.Delta(before)
		fmt.Printf("%-16s demand-zero fault used a pre-cleared page: %v\n", mode, d.ClearedPageHits == 1)
	}
	fmt.Println("\ncached clearing evicted the app's working set (the §9 pathology);")
	fmt.Println("uncached clearing banked the same pages without touching the cache.")
}

// nonIdleLines counts resident data-cache lines that belong to the
// running system (anything but the idle task's clears).
func nonIdleLines(k *kernel.Kernel) int {
	n := 0
	for cl, lines := range k.M.DCache.Residency() {
		if cl != cache.ClassIdle {
			n += lines
		}
	}
	return n
}
