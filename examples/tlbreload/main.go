// tlbreload reproduces the §6 story interactively: how much a TLB miss
// costs under each reload strategy on a PowerPC 603, and why "improving
// hash tables away" works.
//
// The workload walks a working set far larger than the 128-entry TLB,
// so every pass is reload-dominated; the three kernels differ only in
// how the miss handler finds the PTE.
package main

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func run(name string, cfg kernel.Config) {
	m := machine.New(clock.PPC603At180())
	k := kernel.New(m, cfg)
	img := k.LoadImage("thrash", 4)
	t := k.Spawn(img)
	k.Switch(t)
	_ = t

	// 512 pages: four times the 603's TLB reach.
	addr := k.SysMmap(512)
	k.UserTouchPages(addr, 512) // fault everything in (untimed)

	before := m.Mon.Snapshot()
	start := m.Led.Now()
	for pass := 0; pass < 8; pass++ {
		k.UserTouchPages(addr, 512)
	}
	cycles := m.Led.Now() - start
	d := m.Mon.Delta(before)

	perMiss := float64(cycles) / float64(d.TLBMisses)
	fmt.Printf("%-28s %9d cycles  %6d TLB misses  ~%5.0f cycles/miss  htab hit rate %5.1f%%\n",
		name, cycles, d.TLBMisses, perMiss, 100*d.HTABHitRate())
}

func main() {
	fmt.Println("PowerPC 603/180: 4096 working-set touches per pass, 512-page set (4x TLB reach)")
	fmt.Printf("(page size %d, TLB %d entries)\n\n", arch.PageSize, 128)

	cHandlers := kernel.Unoptimized() // C handlers, hash-table search
	fmt.Println("reload strategy:")
	run("C handlers + hash table", cHandlers)

	fast := cHandlers
	fast.FastReload = true
	run("fast handlers + hash table", fast)

	direct := fast
	direct.UseHTAB = false
	run("fast handlers, direct tree", direct)

	fmt.Println("\nThe direct-tree reload takes three loads in the worst case (§6.1);")
	fmt.Println("the hash-table search emulating the 604 touches up to 16 PTEs and")
	fmt.Println("still has to maintain the table — which is why §6.2 removes it.")
}
