// tlbstress drives trace-generated access patterns across the TLB-reach
// cliff — the workloads §5.1 admits its benchmarks lack ("it's quite
// possible that our benchmarks do not represent applications that
// really stress TLB capacity").
package main

import (
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/trace"
)

func main() {
	const refs = 20000
	model := clock.PPC604At185()
	fmt.Printf("%s: %d-entry TLB = %d KB of reach\n\n", model.Name, model.TLBEntries, model.TLBEntries*4)
	fmt.Printf("%-20s", "pages (KB)")
	patterns := []string{"sequential", "working-set", "pointer-chase", "zipfian"}
	for _, p := range patterns {
		fmt.Printf("%16s", p)
	}
	fmt.Println()

	for _, pages := range []int{128, 192, 256, 384, 512, 1024} {
		fmt.Printf("%-20s", fmt.Sprintf("%d (%d KB)", pages, pages*4))
		gens := []trace.Generator{
			trace.NewSequential(kernel.UserMmapBase, pages),
			trace.NewWorkingSet(kernel.UserMmapBase, pages, pages/8+1, 90, 7),
			trace.NewPointerChase(kernel.UserMmapBase, pages, 7),
			trace.NewZipfian(kernel.UserMmapBase, max(pages, 100), 7),
		}
		for _, g := range gens {
			k := kernel.New(machine.New(model), kernel.Optimized())
			k.Spawn(k.LoadImage("stress", 4))
			k.SysMmap(max(pages, 100))
			k.UserTouchPages(kernel.UserMmapBase, max(pages, 100))
			start := k.M.Led.Now()
			// Consume whole runs when the generator can describe its
			// stream that way (sequential walks); the irregular
			// patterns stay reference-at-a-time.
			if rg, ok := g.(trace.RunGenerator); ok {
				for done := 0; done < refs; {
					ea, cnt, stride := rg.NextRun(refs - done)
					k.UserRefRun(ea, cnt, stride, false)
					done += cnt
				}
			} else {
				for i := 0; i < refs; i++ {
					k.UserRef(g.Next(), false)
				}
			}
			cyc := float64(k.M.Led.Now()-start) / refs
			fmt.Printf("%14.1fc ", cyc)
		}
		fmt.Println()
	}
	fmt.Println("\ncycles per reference; the cliff at 256 pages is the 604's TLB reach.")
	fmt.Println("Regular walks fall off it completely; skewed traffic degrades gently —")
	fmt.Println("which is why the paper's superpage discussion (§2) matters for big apps.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
