// lazyflush sweeps the §7 design space: what a 4 MB mmap/munmap pair
// costs as a function of the range-flush cutoff, from fully eager
// (search the hash table for every page in the range) to the paper's
// tuned 20-page cutoff.
package main

import (
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
)

func measure(lazy bool, cutoff int, pages int) (float64, uint64) {
	cfg := kernel.Optimized()
	cfg.UseHTAB = true // the 604-style setup of Table 2
	cfg.LazyFlush = lazy
	cfg.FlushRangeCutoff = cutoff
	if !lazy {
		cfg.IdleReclaim = false
	}
	k := kernel.New(machine.New(clock.PPC603At133()), cfg)
	s := lmbench.New(k)
	r := s.MmapLatency(pages, 6)
	return r.Micros, r.Counters.HTABFlushSearches
}

func main() {
	const pages = 1024 // 4 MB, as in Table 2's mmap row
	fmt.Printf("mmap+munmap of %d pages on a 603/133 (paper: 3240 us eager, 41 us lazy)\n\n", pages)
	fmt.Printf("%-34s %12s %18s\n", "flush strategy", "latency", "htab search loads")

	us, searches := measure(false, 0, pages)
	fmt.Printf("%-34s %9.1f us %18d\n", "eager, per-page search", us, searches)

	for _, cutoff := range []int{2048, 100, 20} {
		us, searches = measure(true, cutoff, pages)
		name := fmt.Sprintf("lazy, cutoff %d pages", cutoff)
		if cutoff >= pages {
			name += " (never trips)"
		}
		fmt.Printf("%-34s %9.1f us %18d\n", name, us, searches)
	}

	fmt.Println("\nAbove the cutoff the kernel retires the whole context instead: the")
	fmt.Println("process gets fresh VSIDs, its old PTEs become unmatchable zombies, and")
	fmt.Println("no hash-table search happens at all — the 80x collapse of §7.")
}
