// profile shows where the cycles go — the instrumented-kernel view the
// paper's whole optimization campaign was steered by (§4: "extensive
// use of quantitative measures and detailed analysis of low level
// system performance").
package main

import (
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func main() {
	cfg := kbuild.Default()
	cfg.Units = 4
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8

	fmt.Println("kernel-path cycle profile of the compile workload (603/180)")
	for _, kc := range []struct {
		name string
		cfg  kernel.Config
	}{
		{"unoptimized", kernel.Unoptimized()},
		{"optimized", kernel.Optimized()},
	} {
		k := kernel.New(machine.New(clock.PPC603At180()), kc.cfg)
		k.EnableProfiling()
		r := kbuild.Run(k, cfg)
		fmt.Printf("\n== %s (compute %.4f sim s) ==\n", kc.name, r.ComputeSeconds)
		fmt.Print(k.Profile().String())
	}
	fmt.Println("\nThe miss-handler and flush shares collapsing into user time IS the")
	fmt.Println("paper: every section (§5-§9) attacks one of these kernel slices.")
}
